module Dom = Rxml.Dom
module Rng = Rworkload.Rng
module Shape = Rworkload.Shape
module Xmark = Rworkload.Xmark
module Dblp = Rworkload.Dblp
module Updates = Rworkload.Updates
module Stats = Rxml.Stats

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let diffs = ref 0 in
  let a' = Rng.create 42 in
  for _ = 1 to 50 do
    if Rng.int a' 1000 <> Rng.int c 1000 then incr diffs
  done;
  Alcotest.(check bool) "different seeds diverge" true (!diffs > 30)

let test_rng_ranges () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 10 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 10);
    let f = Rng.float rng in
    Alcotest.(check bool) "unit float" true (f >= 0. && f < 1.)
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 11 in
  let counts = Array.make 11 0 in
  for _ = 1 to 5000 do
    let r = Rng.zipf rng ~s:1.2 ~n:10 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 10" true
    (counts.(1) > 4 * counts.(10))

let test_shape_profiles () =
  let uni =
    Shape.generate ~seed:1 ~target:500 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  Alcotest.(check bool) "uniform size near target" true
    (abs (Dom.size uni - 500) < 20);
  let deep = Shape.generate ~seed:2 ~target:300 (Shape.Deep { fanout = 3; bias = 0.8 }) in
  Alcotest.(check bool) "deep profile is deeper" true
    (Stats.(compute deep).max_depth > Stats.(compute uni).max_depth);
  let skew = Shape.generate ~seed:3 ~target:800 (Shape.Skewed { max_fanout = 60; s = 1.1 }) in
  let st = Stats.compute skew in
  Alcotest.(check bool) "skewed has fan-out disparity" true
    (float_of_int st.Stats.max_fanout > 4. *. st.Stats.avg_fanout)

let test_chain_comb () =
  let ch = Shape.chain ~depth:25 () in
  Alcotest.(check int) "chain size" 26 (Dom.size ch);
  Alcotest.(check int) "chain depth" 25 Stats.(compute ch).max_depth;
  let cb = Shape.comb ~depth:10 ~width:4 () in
  Alcotest.(check int) "comb size" (1 + 10 + (11 * 3)) (Dom.size cb)

let test_xmark_shape () =
  let site = Xmark.generate ~seed:5 ~scale:1.0 in
  let st = Stats.compute site in
  Alcotest.(check string) "root tag" "site" (Dom.tag site);
  Alcotest.(check bool) "size scales" true (st.Stats.nodes > 1500);
  Alcotest.(check bool) "recursive depth" true (st.Stats.max_depth >= 6);
  (* Determinism. *)
  let site2 = Xmark.generate ~seed:5 ~scale:1.0 in
  Alcotest.(check string) "deterministic" (Rxml.Serializer.to_string site)
    (Rxml.Serializer.to_string site2);
  (* Queries parse and run. *)
  let eng = Rxpath.Engine_naive.create site in
  List.iter
    (fun q -> ignore (Rxpath.Eval.query eng q))
    Xmark.queries

let test_dblp_shape () =
  let root = Dblp.generate ~seed:9 ~publications:200 in
  Alcotest.(check int) "root fan-out equals publications" 200 (Dom.degree root);
  let eng = Rxpath.Engine_naive.create root in
  List.iter (fun q -> ignore (Rxpath.Eval.query eng q)) Dblp.queries;
  Alcotest.(check bool) "authors found" true
    (List.length (Rxpath.Eval.query eng "//author") > 200)

let test_update_script_replay () =
  (* The same script applied to two clones yields identical trees. *)
  let base =
    Shape.generate ~seed:17 ~target:120 (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  let ops = Updates.script ~seed:3 ~ops:40 base in
  Alcotest.(check int) "script length" 40 (List.length ops);
  let play tree =
    List.iter
      (fun op ->
        ignore
          (Updates.apply tree
             ~insert:(fun ~parent ~pos node -> Dom.insert_child parent ~pos node)
             ~delete:(fun n ->
               match n.Dom.parent with
               | Some p -> Dom.remove_child p n
               | None -> ())
             op))
      ops;
    Rxml.Serializer.to_string tree
  in
  let a = play (Dom.clone base) and b = play (Dom.clone base) in
  Alcotest.(check string) "replicas agree" a b

let test_update_script_against_schemes () =
  (* Replaying through a real scheme must keep the scheme consistent. *)
  let base =
    Shape.generate ~seed:23 ~target:100 (Shape.Uniform { fanout_lo = 0; fanout_hi = 3 })
  in
  let ops = Updates.script ~seed:7 ~ops:30 base in
  let tree = Dom.clone base in
  let r2 = Ruid.Ruid2.number ~max_area_size:8 tree in
  List.iter
    (fun op ->
      ignore
        (Updates.apply tree
           ~insert:(fun ~parent ~pos node ->
             Ruid.Ruid2.insert_node r2 ~parent ~pos node)
           ~delete:(fun n -> Ruid.Ruid2.delete_subtree r2 n)
           op))
    ops;
  Ruid.Ruid2.check_consistency r2

let test_deep_insert_script () =
  let root = Shape.chain ~depth:20 () in
  (match Updates.deep_insert_script root ~depth_fraction:0.5 with
  | Updates.Insert { parent_rank; pos } ->
    Alcotest.(check int) "half depth" 10 parent_rank;
    Alcotest.(check int) "first child" 0 pos
  | Updates.Delete _ -> Alcotest.fail "expected insert");
  match Updates.deep_insert_script root ~depth_fraction:0.0 with
  | Updates.Insert { parent_rank; _ } ->
    Alcotest.(check int) "root insert" 0 parent_rank
  | Updates.Delete _ -> Alcotest.fail "expected insert"

let test_clone_independence () =
  let a = Shape.generate ~seed:1 ~target:40 (Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }) in
  let b = Dom.clone a in
  Alcotest.(check int) "same size" (Dom.size a) (Dom.size b);
  Dom.append_child b (Dom.element "extra");
  Alcotest.(check bool) "clone is independent" true (Dom.size a <> Dom.size b);
  Alcotest.(check bool) "fresh serials" true
    (List.for_all2 (fun x y -> x.Dom.serial <> y.Dom.serial)
       (Dom.preorder a)
       (List.filteri (fun i _ -> i < Dom.size a) (Dom.preorder b)))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
    Alcotest.test_case "shape profiles" `Quick test_shape_profiles;
    Alcotest.test_case "chain and comb" `Quick test_chain_comb;
    Alcotest.test_case "xmark generator" `Quick test_xmark_shape;
    Alcotest.test_case "dblp generator" `Quick test_dblp_shape;
    Alcotest.test_case "update script replay" `Quick test_update_script_replay;
    Alcotest.test_case "update script through ruid2" `Quick test_update_script_against_schemes;
    Alcotest.test_case "deep insert script" `Quick test_deep_insert_script;
    Alcotest.test_case "clone independence" `Quick test_clone_independence;
  ]
