module Dom = Rxml.Dom
open Util

let sample () =
  (* <a><b><d/><e/></b><c/></a> *)
  let d = Dom.element "d" and e = Dom.element "e" in
  let b = t "b" [] and c = t "c" [] in
  Dom.append_child b d;
  Dom.append_child b e;
  let a = t "a" [] in
  Dom.append_child a b;
  Dom.append_child a c;
  (a, b, c, d, e)

let test_structure () =
  let a, b, c, d, e = sample () in
  Alcotest.(check int) "size" 5 (Dom.size a);
  Alcotest.(check int) "degree a" 2 (Dom.degree a);
  check_node_list "preorder" [ a; b; d; e; c ] (Dom.preorder a);
  check_node_list "descendants" [ b; d; e; c ] (Dom.descendants a);
  check_node_list "ancestors of d" [ b; a ] (Dom.ancestors d);
  Alcotest.(check int) "depth of e" 2 (Dom.depth_of e);
  Alcotest.(check int) "child_index c" 1 (Dom.child_index c)

let test_is_ancestor () =
  let a, b, c, d, _ = sample () in
  Alcotest.(check bool) "a anc d" true (Dom.is_ancestor ~anc:a ~desc:d);
  Alcotest.(check bool) "b anc d" true (Dom.is_ancestor ~anc:b ~desc:d);
  Alcotest.(check bool) "c not anc d" false (Dom.is_ancestor ~anc:c ~desc:d);
  Alcotest.(check bool) "not reflexive" false (Dom.is_ancestor ~anc:a ~desc:a)

let test_document_order () =
  let a, b, c, d, e = sample () in
  Alcotest.(check bool) "b < c" true (Dom.document_order ~root:a b c < 0);
  Alcotest.(check bool) "d < e" true (Dom.document_order ~root:a d e < 0);
  Alcotest.(check bool) "e < c" true (Dom.document_order ~root:a e c < 0);
  Alcotest.(check int) "self" 0 (Dom.document_order ~root:a d d)

let test_insert_remove () =
  let a, b, _, _, _ = sample () in
  let x = Dom.element "x" in
  Dom.insert_child a ~pos:1 x;
  Alcotest.(check int) "x at position 1" 1 (Dom.child_index x);
  Alcotest.(check int) "degree grew" 3 (Dom.degree a);
  Dom.remove_child a x;
  Alcotest.(check int) "degree restored" 2 (Dom.degree a);
  Alcotest.(check bool) "x detached" true (x.Dom.parent = None);
  (* Insert clamps out-of-range positions. *)
  let y = Dom.element "y" in
  Dom.insert_child b ~pos:99 y;
  Alcotest.(check int) "clamped to end" 2 (Dom.child_index y);
  Alcotest.check_raises "double attach"
    (Invalid_argument "Dom.append_child: child already attached") (fun () ->
      Dom.append_child a y)

let test_attrs () =
  let n = Dom.element ~attrs:[ ("id", "1") ] "x" in
  Alcotest.(check (option string)) "read" (Some "1") (Dom.attr n "id");
  Dom.set_attr n "id" "2";
  Dom.set_attr n "lang" "en";
  Alcotest.(check (option string)) "overwritten" (Some "2") (Dom.attr n "id");
  Alcotest.(check (option string)) "added" (Some "en") (Dom.attr n "lang");
  Alcotest.(check (option string)) "missing" None (Dom.attr n "none")

let test_text_content () =
  let p = t "p" [] in
  Dom.append_child p (Dom.text "hello ");
  let em = t "em" [] in
  Dom.append_child em (Dom.text "wor");
  Dom.append_child p em;
  Dom.append_child p (Dom.text "ld");
  Alcotest.(check string) "concatenated" "hello world" (Dom.text_content p)

let test_serial_stability () =
  let a, b, _, _, _ = sample () in
  let s = b.Dom.serial in
  let x = Dom.element "x" in
  Dom.insert_child a ~pos:0 x;
  Alcotest.(check int) "serial survives edits" s b.Dom.serial

let prop_preorder_size =
  Util.qtest "preorder length = size" QCheck.(int_range 1 200) (fun n ->
      let root = Rworkload.Shape.generate ~seed:n ~target:n (Rworkload.Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }) in
      List.length (Dom.preorder root) = Dom.size root)

let prop_ancestor_antisymmetric =
  Util.qtest "ancestor relation is antisymmetric" QCheck.(int_range 2 100) (fun n ->
      let root = Rworkload.Shape.generate ~seed:(n * 7) ~target:n (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }) in
      let rng = Rworkload.Rng.create n in
      let a = Rworkload.Shape.random_node rng root in
      let b = Rworkload.Shape.random_node rng root in
      not (Dom.is_ancestor ~anc:a ~desc:b && Dom.is_ancestor ~anc:b ~desc:a))

let suite =
  [
    Alcotest.test_case "structure accessors" `Quick test_structure;
    Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
    Alcotest.test_case "document_order" `Quick test_document_order;
    Alcotest.test_case "insert/remove" `Quick test_insert_remove;
    Alcotest.test_case "attributes" `Quick test_attrs;
    Alcotest.test_case "text_content" `Quick test_text_content;
    Alcotest.test_case "serial stability" `Quick test_serial_stability;
    prop_preorder_size;
    prop_ancestor_antisymmetric;
  ]
