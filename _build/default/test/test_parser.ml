module Dom = Rxml.Dom
module P = Rxml.Parser
module S = Rxml.Serializer

let parse = P.parse_string

let root s = Dom.root_element (parse s)

let test_basic () =
  let r = root "<a><b/><c>text</c></a>" in
  Alcotest.(check string) "root tag" "a" (Dom.tag r);
  Alcotest.(check int) "two children" 2 (Dom.degree r);
  Alcotest.(check string) "text" "text" (Dom.text_content r)

let test_attributes () =
  let r = root {|<a x="1" y='two' z="a&amp;b"/>|} in
  Alcotest.(check (option string)) "double quoted" (Some "1") (Dom.attr r "x");
  Alcotest.(check (option string)) "single quoted" (Some "two") (Dom.attr r "y");
  Alcotest.(check (option string)) "entity in value" (Some "a&b") (Dom.attr r "z")

let test_entities () =
  let r = root "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>" in
  Alcotest.(check string) "decoded" "<>&'\"AB" (Dom.text_content r)

let test_cdata () =
  let r = root "<a><![CDATA[<not>&parsed;]]></a>" in
  Alcotest.(check string) "raw" "<not>&parsed;" (Dom.text_content r)

let test_comments_pis () =
  let doc = parse "<?xml version=\"1.0\"?><!-- top --><a><!-- in --><?target data?></a>" in
  let r = Dom.root_element doc in
  let kinds = List.map (fun n -> n.Dom.kind) r.Dom.children in
  (match kinds with
  | [ Dom.Comment c; Dom.Pi (t, d) ] ->
    Alcotest.(check string) "comment body" " in " c;
    Alcotest.(check string) "pi target" "target" t;
    Alcotest.(check string) "pi data" "data" d
  | _ -> Alcotest.fail "expected comment and pi children")

let test_doctype_skipped () =
  let r = root "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>ok</a>" in
  Alcotest.(check string) "parsed past doctype" "ok" (Dom.text_content r)

let test_whitespace_modes () =
  let src = "<a>\n  <b/>\n</a>" in
  let r1 = root src in
  Alcotest.(check int) "whitespace dropped" 1 (Dom.degree r1);
  let r2 = Dom.root_element (P.parse_string ~keep_whitespace:true src) in
  Alcotest.(check int) "whitespace kept" 3 (Dom.degree r2)

let test_nested_depth () =
  let n = 500 in
  let src = String.concat "" (List.init n (fun _ -> "<d>"))
            ^ "x"
            ^ String.concat "" (List.init n (fun _ -> "</d>")) in
  let r = root src in
  Alcotest.(check int) "deep nesting" n (Rxml.Stats.(compute r).max_depth);
  Alcotest.(check string) "content" "x" (Dom.text_content r)

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let expect_error src msg_fragment =
  match parse src with
  | exception P.Parse_error e ->
    let rendered = Format.asprintf "%a" P.pp_error e in
    if not (contains ~sub:msg_fragment rendered) then
      Alcotest.failf "error %S does not mention %S" rendered msg_fragment
  | _ -> Alcotest.failf "expected a parse error for %S" src

let test_errors () =
  expect_error "<a><b></a>" "mismatched end tag";
  expect_error "<a>" "expected";
  expect_error "<a x=1/>" "quoted attribute";
  expect_error "<a>&bogus;</a>" "unknown entity";
  expect_error "<a/><b/>" "content after root";
  expect_error "<a x='1' x='2'/>" "duplicate attribute";
  expect_error "" "expected root element"

let test_error_position () =
  match parse "<a>\n<b>\n</c>\n</a>" with
  | exception P.Parse_error e -> Alcotest.(check int) "line number" 3 e.P.line
  | _ -> Alcotest.fail "expected parse error"

let test_round_trip () =
  let src = {|<a id="1"><b>x &amp; y</b><c/><!--note--><?pi data?></a>|} in
  let doc = P.parse_string ~keep_whitespace:true src in
  let out = S.to_string doc in
  let doc2 = P.parse_string ~keep_whitespace:true out in
  Alcotest.(check string) "stable after one round" out (S.to_string doc2)

let test_escape () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;d" (S.escape_text "a&b<c>d");
  Alcotest.(check string) "attr" "say &quot;hi&quot;" (S.escape_attr "say \"hi\"")

let test_pretty_print () =
  let doc = parse "<a><b><c/></b></a>" in
  let pretty = S.to_string ~indent:2 doc in
  Alcotest.(check bool) "contains newline-indented child" true
    (contains ~sub:"\n  <b>" pretty)

let prop_generated_round_trip =
  Util.qtest "generated trees survive serialize/parse" QCheck.(int_range 1 60)
    (fun n ->
      let root =
        Rworkload.Shape.generate ~seed:(n * 13) ~target:n
          (Rworkload.Shape.Uniform { fanout_lo = 0; fanout_hi = 3 })
      in
      let s = S.to_string root in
      let back = Dom.root_element (P.parse_string s) in
      (* Compare shapes and tags. *)
      let shape r =
        List.map (fun x -> (Dom.tag x, Dom.degree x)) (Dom.preorder r)
      in
      shape root = shape back)

let suite =
  [
    Alcotest.test_case "basic structure" `Quick test_basic;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "entities" `Quick test_entities;
    Alcotest.test_case "CDATA" `Quick test_cdata;
    Alcotest.test_case "comments and PIs" `Quick test_comments_pis;
    Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
    Alcotest.test_case "whitespace modes" `Quick test_whitespace_modes;
    Alcotest.test_case "deep nesting" `Quick test_nested_depth;
    Alcotest.test_case "malformed inputs" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "serialize round-trip" `Quick test_round_trip;
    Alcotest.test_case "escaping" `Quick test_escape;
    Alcotest.test_case "pretty printing" `Quick test_pretty_print;
    prop_generated_round_trip;
  ]
