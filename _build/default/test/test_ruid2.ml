module Dom = Rxml.Dom
module Frame = Ruid.Frame
module R2 = Ruid.Ruid2
module K = Ruid.Ktable
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let uniform lo hi = Shape.Uniform { fanout_lo = lo; fanout_hi = hi }

let mkid global local is_root = { R2.global; local; is_root }

(* --------------------------------------------------------------------- *)
(* Reconstruction of the worked example of Figs. 4-5 and Example 2.      *)
(*                                                                       *)
(* kappa = 4, six UID-local areas with globals 1, 2, 3, 4, 5, 10 and     *)
(* K rows (1,1,4) (2,2,2) (3,3,3) (4,4,1) (5,5,1) (10,9,2).              *)
(* --------------------------------------------------------------------- *)
type example =
  { root : Dom.t; r2 : R2.t; x27 : Dom.t; x33 : Dom.t; a10 : Dom.t; a3 : Dom.t }

let example () =
  (* Area 2 (fan-out 2): root -> children at locals 2,3; the child at
     local 3 has two children at locals 6,7. *)
  let a2 = t "a2" [ t "x22" []; t "x23" [ t "x26" []; t "x27" [] ] ] in
  let x27 = List.nth (List.nth a2.Dom.children 1).Dom.children 1 in
  (* Area 3 (fan-out 3): root has three children at locals 2,3,4; the one
     at local 3 has two children at locals 8,9; local 9 roots area 10. *)
  let a10 = t "a10" [ t "y" []; t "z" [] ] in
  let x33 = t "x33" [ t "x38" [] ] in
  Dom.append_child x33 a10;
  let a3 = t "a3" [ t "x32" [] ] in
  Dom.append_child a3 x33;
  Dom.append_child a3 (t "x34" []);
  (* Areas 4, 5: single-child areas. *)
  let a4 = t "a4" [ t "p" [] ] in
  let a5 = t "a5" [ t "q" [] ] in
  let root = t "R" [] in
  List.iter (Dom.append_child root) [ a2; a3; a4; a5 ];
  let frame = Frame.of_cut_set root [ a2; a3; a4; a5; a10 ] in
  let r2 = R2.number_with_frame frame in
  { root; r2; x27; x33; a10; a3 }

let test_example_globals () =
  let e = example () in
  Alcotest.(check int) "kappa = 4" 4 (R2.kappa e.r2);
  Alcotest.(check int) "six areas" 6 (R2.area_count e.r2);
  let rows =
    List.map
      (fun r -> (r.K.global, r.K.root_local, r.K.fanout))
      (K.rows (R2.ktable e.r2))
  in
  Alcotest.(check (list (triple int int int)))
    "the K table of Fig. 5"
    [ (1, 1, 4); (2, 2, 2); (3, 3, 3); (4, 4, 1); (5, 5, 1); (10, 9, 2) ]
    rows

let test_example_ids () =
  let e = example () in
  Alcotest.check rid "tree root is (1,1,true)" (mkid 1 1 true)
    (R2.id_of_node e.r2 e.root);
  Alcotest.check rid "x27 is (2,7,false)" (mkid 2 7 false)
    (R2.id_of_node e.r2 e.x27);
  Alcotest.check rid "x33 is (3,3,false)" (mkid 3 3 false)
    (R2.id_of_node e.r2 e.x33);
  Alcotest.check rid "area-10 root is (10,9,true)" (mkid 10 9 true)
    (R2.id_of_node e.r2 e.a10);
  Alcotest.check rid "area-3 root is (3,3,true)" (mkid 3 3 true)
    (R2.id_of_node e.r2 e.a3)

(* The three walks of Example 2. *)
let test_example2_rparent () =
  let e = example () in
  let rp i = R2.rparent e.r2 i in
  Alcotest.(check (option rid)) "(2,7,f) -> (2,3,f)"
    (Some (mkid 2 3 false)) (rp (mkid 2 7 false));
  Alcotest.(check (option rid)) "(10,9,t) -> (3,3,f)"
    (Some (mkid 3 3 false)) (rp (mkid 10 9 true));
  Alcotest.(check (option rid)) "(3,3,f) -> (3,3,t)"
    (Some (mkid 3 3 true)) (rp (mkid 3 3 false));
  Alcotest.(check (option rid)) "tree root has no parent" None (rp (mkid 1 1 true))

let test_example_consistency () =
  let e = example () in
  R2.check_consistency e.r2

(* --------------------------------------------------------------------- *)
(* Generic validation against the DOM oracle.                            *)
(* --------------------------------------------------------------------- *)

let build ?(max_area_size = 16) root = R2.number ~max_area_size root

let test_consistency_small () =
  let root = t "a" [ t "b" [ t "c" [] ]; t "d" [] ] in
  let r2 = build root in
  R2.check_consistency r2

let test_single_node () =
  let root = t "solo" [] in
  let r2 = build root in
  R2.check_consistency r2;
  Alcotest.check rid "root id" (mkid 1 1 true) (R2.id_of_node r2 root);
  Alcotest.(check int) "no children" 0 (List.length (R2.children r2 root));
  Alcotest.(check int) "no descendants" 0 (List.length (R2.descendants r2 root));
  Alcotest.(check int) "no preceding" 0 (List.length (R2.preceding r2 root))

let test_chain () =
  let root = Shape.chain ~depth:40 () in
  let r2 = R2.number ~max_area_size:6 root in
  R2.check_consistency r2;
  let deepest = List.nth (Dom.preorder root) 40 in
  Alcotest.(check int) "rlevel equals depth" 40
    (R2.rlevel r2 (R2.id_of_node r2 deepest));
  check_node_list "ancestors on chain" (Dom.ancestors deepest)
    (R2.ancestors r2 deepest)

let axes_agree root r2 n =
  check_node_list "children" (dom_children n) (R2.children r2 n);
  check_node_list "descendants" (dom_descendants n) (R2.descendants r2 n);
  check_node_list "ancestors" (dom_ancestors n) (R2.ancestors r2 n);
  check_node_list "preceding siblings" (dom_siblings ~before:true n)
    (R2.preceding_siblings r2 n);
  check_node_list "following siblings" (dom_siblings ~before:false n)
    (R2.following_siblings r2 n);
  check_node_list "preceding" (dom_preceding root n) (R2.preceding r2 n);
  check_node_list "following" (dom_following root n) (R2.following r2 n)

let test_axes_exhaustive_small () =
  let root =
    t "a"
      [ t "b" [ t "c" []; t "d" [ t "e" [] ] ];
        t "f" [];
        t "g" [ t "h" [ t "i" []; t "j" [] ] ] ]
  in
  let r2 = R2.number ~max_area_size:3 root in
  R2.check_consistency r2;
  List.iter (axes_agree root r2) (Dom.preorder root)

let test_axes_random () =
  List.iter
    (fun (seed, size, area) ->
      let root = Shape.generate ~seed ~target:size (uniform 0 5) in
      let r2 = R2.number ~max_area_size:area root in
      R2.check_consistency r2;
      let rng = Rng.create seed in
      for _ = 1 to 12 do
        axes_agree root r2 (Shape.random_node rng root)
      done)
    [ (1, 120, 8); (2, 200, 16); (3, 300, 5); (4, 80, 50); (5, 150, 2) ]

let test_relationship_random () =
  let root = Shape.generate ~seed:99 ~target:250 (uniform 0 4) in
  let r2 = R2.number ~max_area_size:12 root in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let a = Shape.random_node rng root in
    let b = Shape.random_node rng root in
    Alcotest.check rel "relationship matches DOM"
      (dom_relation root a b)
      (R2.relationship r2 (R2.id_of_node r2 a) (R2.id_of_node r2 b))
  done

let test_possible_children () =
  let e = example () in
  (* Possible children of the area-3 root: three slots, one of which is
     occupied by real nodes (locals 2,3,4 exist). *)
  let ids = R2.possible_children_ids e.r2 (mkid 3 3 true) in
  Alcotest.(check int) "three candidate slots" 3 (List.length ids);
  Alcotest.(check (list rid)) "candidates"
    [ mkid 3 2 false; mkid 3 3 false; mkid 3 4 false ]
    ids;
  (* Possible children of x33: slots 8, 9, 10; slot 9 is the root of
     area 10 and must carry the root form of the identifier. *)
  let ids = R2.possible_children_ids e.r2 (mkid 3 3 false) in
  Alcotest.(check (list rid)) "root indicator derived from K"
    [ mkid 3 8 false; mkid 10 9 true; mkid 3 10 false ]
    ids

let test_node_of_id () =
  let e = example () in
  (match R2.node_of_id e.r2 (mkid 2 7 false) with
  | Some n -> Alcotest.(check string) "resolves x27" "x27" (Dom.tag n)
  | None -> Alcotest.fail "should resolve");
  Alcotest.(check bool) "virtual slot gives None" true
    (R2.node_of_id e.r2 (mkid 2 6 true) = None)

(* --------------------------------------------------------------------- *)
(* Structural update (Section 3.2).                                      *)
(* --------------------------------------------------------------------- *)

let test_insert_scope_confined () =
  let e = example () in
  (* Insert before x26 inside area 2: only area-2 members may change;
     area 10 and the other areas must be untouched. *)
  let before = R2.id_of_node e.r2 e.a10 in
  let x23 = List.nth (List.nth e.root.Dom.children 0).Dom.children 1 in
  let changed = R2.insert_node e.r2 ~parent:x23 ~pos:0 (Dom.element "new") in
  R2.check_consistency e.r2;
  Alcotest.(check bool) "some relabeling happened" true (changed >= 1);
  Alcotest.check rid "area 10 untouched" before (R2.id_of_node e.r2 e.a10)

let test_insert_overflow_confined () =
  let e = example () in
  (* Give the area-3 root a fourth child: area fan-out grows 3 -> 4, the
     whole area re-enumerates, but other areas keep their identifiers. *)
  let before_x27 = R2.id_of_node e.r2 e.x27 in
  let _ = R2.insert_node e.r2 ~parent:e.a3 ~pos:3 (Dom.element "fourth") in
  R2.check_consistency e.r2;
  Alcotest.(check int) "area 3 fan-out grew" 4 (K.fanout (R2.ktable e.r2) 3);
  Alcotest.check rid "area 2 untouched" before_x27 (R2.id_of_node e.r2 e.x27)

let test_insert_updates_joint () =
  let e = example () in
  (* Insert a first child of x33 before the slot of area 10's root: the
     joint's local index moves, so area 10's root identifier and K row
     change, but area 10's inner nodes do not. *)
  let inner_before =
    List.map (R2.id_of_node e.r2) e.a10.Dom.children
  in
  let _ = R2.insert_node e.r2 ~parent:e.x33 ~pos:0 (Dom.element "shift") in
  R2.check_consistency e.r2;
  let a10_id = R2.id_of_node e.r2 e.a10 in
  Alcotest.(check bool) "joint moved" true (a10_id.R2.local <> 9);
  Alcotest.(check bool) "area-10 root keeps global and flag" true
    (a10_id.R2.global = 10 && a10_id.R2.is_root);
  Alcotest.(check (list rid)) "area-10 members unchanged" inner_before
    (List.map (R2.id_of_node e.r2) e.a10.Dom.children)

let test_delete_subtree () =
  let e = example () in
  (* Delete x33 (which contains area 10): area 10's K row disappears. *)
  let n_before = List.length (R2.all_nodes e.r2) in
  let removed = Dom.size e.x33 in
  let _ = R2.delete_subtree e.r2 e.x33 in
  R2.check_consistency e.r2;
  Alcotest.(check int) "nodes removed" (n_before - removed)
    (List.length (R2.all_nodes e.r2));
  Alcotest.(check bool) "area 10 gone from K" true
    (K.find (R2.ktable e.r2) 10 = None);
  Alcotest.(check int) "five areas remain" 5 (R2.area_count e.r2)

let test_delete_left_sibling_shifts () =
  let e = example () in
  let x23 = List.nth (List.nth e.root.Dom.children 0).Dom.children 1 in
  let x22 = List.nth (List.nth e.root.Dom.children 0).Dom.children 0 in
  let changed = R2.delete_subtree e.r2 x22 in
  R2.check_consistency e.r2;
  (* x23 and its two children shift left within area 2. *)
  Alcotest.(check int) "three relabeled" 3 changed;
  Alcotest.check rid "x23 now at local 2" (mkid 2 2 false)
    (R2.id_of_node e.r2 x23)

let test_parsed_document_root () =
  (* Regression: a parsed document's root element has the #document node as
     its DOM parent; numbering and updates must treat it as the root. *)
  let doc = Rxml.Parser.parse_string "<a><b><c/></b><d/></a>" in
  let root = Dom.root_element doc in
  let r2 = R2.number ~max_area_size:3 root in
  R2.check_consistency r2;
  let b = List.hd root.Dom.children in
  let changed = R2.insert_node r2 ~parent:b ~pos:0 (Dom.element "new") in
  R2.check_consistency r2;
  Alcotest.(check bool) "insert under parsed root works" true (changed >= 0);
  Alcotest.(check (option rid)) "root id has no parent" None
    (R2.rparent r2 (R2.id_of_node r2 root))

let test_update_random_stays_consistent () =
  let root = Shape.generate ~seed:21 ~target:200 (uniform 0 4) in
  let r2 = R2.number ~max_area_size:10 root in
  let rng = Rng.create 77 in
  for i = 1 to 60 do
    if Rng.bool rng then begin
      let parent = Shape.random_node rng root in
      let pos = Rng.int rng (Dom.degree parent + 1) in
      ignore (R2.insert_node r2 ~parent ~pos (Dom.element "ins"))
    end
    else begin
      let candidates =
        List.filter (fun n -> not (Dom.equal n root)) (Dom.preorder root)
      in
      if candidates <> [] then begin
        let victim = List.nth candidates (Rng.int rng (List.length candidates)) in
        ignore (R2.delete_subtree r2 victim)
      end
    end;
    if i mod 10 = 0 then R2.check_consistency r2
  done;
  R2.check_consistency r2

let prop_numbering_consistent =
  Util.qtest ~count:40 "numbering is consistent on random trees"
    QCheck.(pair (int_range 2 250) (int_range 2 30))
    (fun (n, area) ->
      let root = Shape.generate ~seed:(n * 1021 + area) ~target:n (uniform 0 6) in
      let r2 = R2.number ~max_area_size:area root in
      R2.check_consistency r2;
      true)

let prop_doc_order_total =
  Util.qtest ~count:30 "doc_order sorts into document order"
    QCheck.(int_range 2 120)
    (fun n ->
      let root = Shape.generate ~seed:(n * 7919) ~target:n (uniform 0 5) in
      let r2 = R2.number ~max_area_size:9 root in
      let nodes = Array.of_list (Dom.preorder root) in
      let shuffled = Array.copy nodes in
      Rng.shuffle (Rng.create n) shuffled;
      Array.sort
        (fun a b -> R2.doc_order r2 (R2.id_of_node r2 a) (R2.id_of_node r2 b))
        shuffled;
      Array.map (fun x -> x.Dom.serial) shuffled
      = Array.map (fun x -> x.Dom.serial) nodes)

let suite =
  [
    Alcotest.test_case "Fig. 5: K table" `Quick test_example_globals;
    Alcotest.test_case "Fig. 4: identifiers" `Quick test_example_ids;
    Alcotest.test_case "Example 2: rparent walks" `Quick test_example2_rparent;
    Alcotest.test_case "example consistency" `Quick test_example_consistency;
    Alcotest.test_case "small tree consistency" `Quick test_consistency_small;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "axes on a small tree (all nodes)" `Quick test_axes_exhaustive_small;
    Alcotest.test_case "axes on random trees" `Quick test_axes_random;
    Alcotest.test_case "relationship random" `Quick test_relationship_random;
    Alcotest.test_case "possible children from K" `Quick test_possible_children;
    Alcotest.test_case "node_of_id" `Quick test_node_of_id;
    Alcotest.test_case "insert confined to area" `Quick test_insert_scope_confined;
    Alcotest.test_case "fan-out overflow confined to area" `Quick test_insert_overflow_confined;
    Alcotest.test_case "joint move leaves child area intact" `Quick test_insert_updates_joint;
    Alcotest.test_case "cascading delete" `Quick test_delete_subtree;
    Alcotest.test_case "delete shifts right siblings" `Quick test_delete_left_sibling_shifts;
    Alcotest.test_case "parsed document root" `Quick test_parsed_document_root;
    Alcotest.test_case "random update storm" `Quick test_update_random_stays_consistent;
    prop_numbering_consistent;
    prop_doc_order_total;
  ]
