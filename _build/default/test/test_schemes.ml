module Dom = Rxml.Dom
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let all_schemes : (module Ruid.Scheme.S) list =
  [
    (module Ruid.Scheme_uid);
    (module Ruid.Scheme_ruid2);
    (module Ruid.Scheme_multilevel);
    (module Baselines.Prepost);
    (module Baselines.Interval);
    (module Baselines.Dewey);
  ]

let uniform lo hi = Shape.Uniform { fanout_lo = lo; fanout_hi = hi }

(* Every scheme must decide relations exactly as the DOM does. *)
let test_relation_oracle () =
  List.iter
    (fun (module S : Ruid.Scheme.S) ->
      let root = Shape.generate ~seed:31 ~target:150 (uniform 0 4) in
      let t = S.build root in
      let rng = Rng.create 8 in
      for _ = 1 to 120 do
        let a = Shape.random_node rng root in
        let b = Shape.random_node rng root in
        Alcotest.check rel
          (Printf.sprintf "%s relation" S.name)
          (dom_relation root a b) (S.relation t a b)
      done)
    all_schemes

(* Relations must stay correct across a random workload of updates. *)
let test_relation_after_updates () =
  List.iter
    (fun (module S : Ruid.Scheme.S) ->
      let root = Shape.generate ~seed:5 ~target:80 (uniform 0 3) in
      let t = S.build root in
      let rng = Rng.create 99 in
      for _ = 1 to 40 do
        if Rng.bool rng then begin
          let parent = Shape.random_node rng root in
          let pos = Rng.int rng (Dom.degree parent + 1) in
          ignore (S.insert t ~parent ~pos (Dom.element "ins"))
        end
        else begin
          match List.filter (fun n -> not (Dom.equal n root)) (Dom.preorder root) with
          | [] -> ()
          | candidates ->
            let victim = List.nth candidates (Rng.int rng (List.length candidates)) in
            ignore (S.delete t victim)
        end
      done;
      for _ = 1 to 80 do
        let a = Shape.random_node rng root in
        let b = Shape.random_node rng root in
        Alcotest.check rel
          (Printf.sprintf "%s post-update relation" S.name)
          (dom_relation root a b) (S.relation t a b)
      done)
    all_schemes

(* Fig. 1 quantified: inserting between UID nodes 2 and 3 relabels the six
   nodes 3, 8, 9, 23, 26, 27; a second insertion overflows the fan-out and
   renumbers the descendants wholesale. *)
let fig1_tree () =
  let e tag = Dom.element tag in
  let n8 = e "n8" and n9 = e "n9" in
  Dom.append_child n8 (e "n23");
  Dom.append_child n9 (e "n26");
  Dom.append_child n9 (e "n27");
  let n3 = e "n3" in
  Dom.append_child n3 n8;
  Dom.append_child n3 n9;
  let root = e "root" in
  Dom.append_child root (e "n2");
  Dom.append_child root n3;
  root

let test_uid_fig1_costs () =
  let root = fig1_tree () in
  (* Pad the root's fan-out to 3 so that k = 3 as in the figure. *)
  let pad = Dom.element "pad" in
  Dom.append_child root pad;
  let t = Ruid.Scheme_uid.build root in
  Alcotest.(check int) "k = 3" 3 (Ruid.Scheme_uid.k t);
  ignore (Ruid.Scheme_uid.delete t pad);
  let c1 = Ruid.Scheme_uid.insert t ~parent:root ~pos:1 (Dom.element "new") in
  Alcotest.(check int) "first insertion relabels 6 nodes" 6 c1;
  let c2 = Ruid.Scheme_uid.insert t ~parent:root ~pos:2 (Dom.element "new2") in
  Alcotest.(check int) "overflow insertion grows k" 4 (Ruid.Scheme_uid.k t);
  Alcotest.(check int) "overflow renumbers the old subtree" 6 c2

(* The headline claim of Section 3.2: on a deep-and-wide document an
   insertion near the root relabels vastly less under ruid2 than under the
   original UID. *)
let test_update_scope_comparison () =
  let build_doc () = Shape.comb ~depth:40 ~width:10 () in
  let cost (module S : Ruid.Scheme.S) =
    let root = build_doc () in
    let t = S.build root in
    S.insert t ~parent:root ~pos:0 (Dom.element "new")
  in
  let uid_cost = cost (module Ruid.Scheme_uid) in
  let ruid_cost = cost (module Ruid.Scheme_ruid2) in
  Alcotest.(check bool)
    (Printf.sprintf "ruid2 (%d) relabels less than uid (%d)" ruid_cost uid_cost)
    true
    (ruid_cost * 4 < uid_cost)

let test_interval_gap_behaviour () =
  let root = t "a" [ t "b" []; t "c" [] ] in
  let iv = Baselines.Interval.build_with_gap ~gap:64 root in
  (* Plenty of room: the first insertions touch nothing. *)
  let c1 = Baselines.Interval.insert iv ~parent:root ~pos:1 (Dom.element "x") in
  Alcotest.(check int) "first insert free" 0 c1;
  Alcotest.(check int) "no renumber yet" 0 (Baselines.Interval.renumber_count iv);
  (* Hammer one spot until the gap is exhausted. *)
  let total = ref 0 in
  for _ = 1 to 64 do
    total := !total + Baselines.Interval.insert iv ~parent:root ~pos:1 (Dom.element "y")
  done;
  Alcotest.(check bool) "eventually renumbers" true
    (Baselines.Interval.renumber_count iv >= 1 && !total > 0)

let test_dewey_behaviour () =
  let root = t "a" [ t "b" [ t "c" [] ]; t "d" [] ] in
  let dw = Baselines.Dewey.build root in
  Alcotest.(check int) "append at end is free" 0
    (Baselines.Dewey.insert dw ~parent:root ~pos:2 (Dom.element "x"));
  (* Insert at the front: b's subtree, d and x all shift. *)
  Alcotest.(check int) "front insert shifts right siblings" 4
    (Baselines.Dewey.insert dw ~parent:root ~pos:0 (Dom.element "y"))

let test_prepost_insert_cost () =
  (* A chain: inserting at the top changes the pre of everything below. *)
  let root = Shape.chain ~depth:10 () in
  let pp = Baselines.Prepost.build root in
  let changed = Baselines.Prepost.insert pp ~parent:root ~pos:0 (Dom.element "x") in
  (* The 10 nodes below get new pre ranks and the root a new post rank. *)
  Alcotest.(check int) "all 11 existing nodes relabel" 11 changed

let test_parent_derivable_flags () =
  let flags =
    List.map
      (fun (module S : Ruid.Scheme.S) -> (S.name, S.parent_derivable))
      all_schemes
  in
  Alcotest.(check (list (pair string bool)))
    "UID family derives parents from labels; traversal schemes do not"
    [
      ("uid", true); ("ruid2", true); ("ruid-multi", true);
      ("prepost", false); ("interval", false); ("dewey", true);
    ]
    flags

let test_label_strings_nonempty () =
  List.iter
    (fun (module S : Ruid.Scheme.S) ->
      let root = Shape.generate ~seed:3 ~target:30 (uniform 1 3) in
      let t = S.build root in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s label renders" S.name)
            true
            (String.length (S.label_string t n) > 0))
        (Dom.preorder root))
    all_schemes

let prop_delete_then_relation =
  Util.qtest ~count:25 "relations survive a random deletion in every scheme"
    QCheck.(int_range 10 80)
    (fun n ->
      List.for_all
        (fun (module S : Ruid.Scheme.S) ->
          let root = Shape.generate ~seed:n ~target:n (uniform 1 3) in
          let t = S.build root in
          let rng = Rng.create (n * 3) in
          (match List.filter (fun x -> not (Dom.equal x root)) (Dom.preorder root) with
          | [] -> ()
          | cs -> ignore (S.delete t (List.nth cs (Rng.int rng (List.length cs)))));
          let ok = ref true in
          for _ = 1 to 30 do
            let a = Shape.random_node rng root in
            let b = Shape.random_node rng root in
            if S.relation t a b <> dom_relation root a b then ok := false
          done;
          !ok)
        all_schemes)

let suite =
  [
    Alcotest.test_case "relation oracle (all schemes)" `Quick test_relation_oracle;
    Alcotest.test_case "relations after update storm" `Quick test_relation_after_updates;
    Alcotest.test_case "Fig. 1 relabel counts under UID" `Quick test_uid_fig1_costs;
    Alcotest.test_case "Section 3.2: ruid2 beats UID on update scope" `Quick test_update_scope_comparison;
    Alcotest.test_case "interval gaps" `Quick test_interval_gap_behaviour;
    Alcotest.test_case "dewey shifts" `Quick test_dewey_behaviour;
    Alcotest.test_case "prepost insert cost" `Quick test_prepost_insert_cost;
    Alcotest.test_case "parent derivability flags" `Quick test_parent_derivable_flags;
    Alcotest.test_case "label rendering" `Quick test_label_strings_nonempty;
    prop_delete_then_relation;
  ]
