test/test_codec.ml: Alcotest Bignum Buffer Bytes List QCheck Ruid Rworkload Rxml Util
