test/test_storage.ml: Alcotest Array Hashtbl List Option QCheck Rstorage Ruid Rworkload Rxml Util
