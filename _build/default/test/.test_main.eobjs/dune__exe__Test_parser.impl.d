test/test_parser.ml: Alcotest Format List QCheck Rworkload Rxml String Util
