test/test_sax.ml: Alcotest Hashtbl List QCheck Rworkload Rxml Util
