test/test_collection.ml: Alcotest List Ruid Rworkload Rxml Rxpath
