test/test_persist.ml: Alcotest Bytes Filename List QCheck Ruid Rworkload Rxml Sys Util
