test/test_partitioned.ml: Alcotest Array List Printf Rstorage Ruid Rworkload Rxml Util
