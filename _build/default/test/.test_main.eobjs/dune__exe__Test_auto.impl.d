test/test_auto.ml: Alcotest List Ruid Rworkload Rxml Rxpath Util
