test/test_join.ml: Alcotest Baselines List Printf QCheck Rjoin Ruid Rworkload Rxml Stdlib Util
