test/test_fuzz.ml: Alcotest Bytes Char Ruid Rworkload Rxml Rxpath String
