test/test_ruid2.ml: Alcotest Array List QCheck Ruid Rworkload Rxml Util
