test/test_bignat.ml: Alcotest Bignum List QCheck Util
