test/test_dataguide.ml: Alcotest List QCheck Rsummary Rworkload Rxml Rxpath String Util
