test/test_pathplan.ml: Alcotest Format List Option QCheck Ruid Rworkload Rxml Rxpath Util
