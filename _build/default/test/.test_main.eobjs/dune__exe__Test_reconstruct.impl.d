test/test_reconstruct.ml: Alcotest List Ruid Rworkload Rxml Util
