test/test_frame.ml: Alcotest List Printf QCheck Ruid Rworkload Rxml Util
