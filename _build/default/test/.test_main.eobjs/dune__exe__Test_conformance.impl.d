test/test_conformance.ml: Alcotest List Printf Ruid Rxml Rxpath String
