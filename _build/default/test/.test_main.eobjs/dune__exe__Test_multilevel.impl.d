test/test_multilevel.ml: Alcotest Bignum List Printf Ruid Rworkload Rxml Util
