test/test_misc.ml: Alcotest Float List Ruid Rxml Rxpath Util
