test/test_mruid.ml: Alcotest List Printf QCheck Ruid Rworkload Rxml Unix Util
