test/test_twig.ml: Alcotest List Option QCheck Ruid Rworkload Rxml Rxpath Util
