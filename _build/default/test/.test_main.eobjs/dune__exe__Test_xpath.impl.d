test/test_xpath.ml: Alcotest List Printf QCheck Ruid Rworkload Rxml Rxpath Util
