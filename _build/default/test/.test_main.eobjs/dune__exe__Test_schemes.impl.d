test/test_schemes.ml: Alcotest Baselines List Printf QCheck Ruid Rworkload Rxml String Util
