test/test_uid.ml: Alcotest Bignum Hashtbl List QCheck Ruid Rworkload Rxml Util
