test/test_dom.ml: Alcotest List QCheck Rworkload Rxml Util
