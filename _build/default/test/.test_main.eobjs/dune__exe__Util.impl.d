test/util.ml: Alcotest List QCheck QCheck_alcotest Ruid Rxml
