test/test_workload.ml: Alcotest Array List Ruid Rworkload Rxml Rxpath
