module Dom = Rxml.Dom
module G = Rsummary.Dataguide
module Shape = Rworkload.Shape
open Util

let sample () =
  Rxml.Parser.parse_string
    {|<site>
        <people><person><name/></person><person><name/><age/></person></people>
        <items><item><name/></item></items>
      </site>|}
  |> Dom.root_element

let test_structure () =
  let g = G.build (sample ()) in
  Alcotest.(check int) "document nodes" 10 (G.document_nodes g);
  (* Distinct paths: site, site/people, site/people/person,
     site/people/person/name, site/people/person/age, site/items,
     site/items/item, site/items/item/name. *)
  Alcotest.(check int) "guide nodes" 8 (G.guide_nodes g);
  Alcotest.(check int) "paths enumerated" 8 (List.length (G.paths g))

let test_targets () =
  let root = sample () in
  let g = G.build root in
  Alcotest.(check int) "two persons" 2
    (List.length (G.targets g [ "site"; "people"; "person" ]));
  Alcotest.(check int) "person names share a guide node" 2
    (List.length (G.targets g [ "site"; "people"; "person"; "name" ]));
  Alcotest.(check int) "item name distinct from person name" 1
    (List.length (G.targets g [ "site"; "items"; "item"; "name" ]));
  Alcotest.(check int) "absent path" 0
    (List.length (G.targets g [ "site"; "nothing" ]));
  Alcotest.(check bool) "mem" true (G.mem g [ "site"; "people" ]);
  Alcotest.(check bool) "not mem" false (G.mem g [ "wrong" ])

let test_child_labels () =
  let g = G.build (sample ()) in
  Alcotest.(check (list string)) "completion at root" [ "people"; "items" ]
    (G.child_labels g [ "site" ]);
  Alcotest.(check (list string)) "completion under person" [ "name"; "age" ]
    (G.child_labels g [ "site"; "people"; "person" ])

(* The guide answers child-only absolute paths exactly like the XPath
   evaluator. *)
let test_matches_xpath () =
  let root =
    Shape.generate ~seed:5 ~tags:[| "a"; "b"; "c" |] ~target:300
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  let g = G.build root in
  let doc = Dom.document () in
  Dom.append_child doc root;
  let eng = Rxpath.Engine_naive.create doc in
  List.iter
    (fun path ->
      let xpath = "/" ^ String.concat "/" path in
      match G.answer_child_path g path with
      | Some guided ->
        check_node_list xpath (Rxpath.Eval.query eng xpath) guided
      | None -> Alcotest.fail "guide refused a child path")
    (G.paths g)

let prop_guide_invariants =
  Util.qtest ~count:30 "guide target sets partition the document"
    QCheck.(int_range 2 200)
    (fun n ->
      let root =
        Shape.generate ~seed:(n * 3) ~tags:[| "a"; "b" |] ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 3 })
      in
      let g = G.build root in
      let total =
        List.fold_left
          (fun acc p -> acc + List.length (G.targets g p))
          0 (G.paths g)
      in
      (* Every element has exactly one label path. *)
      total = G.document_nodes g && G.document_nodes g = Dom.size root)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "target sets" `Quick test_targets;
    Alcotest.test_case "child label completion" `Quick test_child_labels;
    Alcotest.test_case "guide answers match XPath" `Quick test_matches_xpath;
    prop_guide_invariants;
  ]
