(* Direct unit tests for small modules otherwise covered only through
   their callers: Rel, Ktable, Eval value coercions, Stats. *)

module K = Ruid.Ktable
module Rel = Ruid.Rel
module Eval = Rxpath.Eval
open Util

(* ------------------------------------------------------------------ *)
(* Rel                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rel_inverse () =
  List.iter
    (fun r -> Alcotest.check rel "double inverse" r (Rel.inverse (Rel.inverse r)))
    [ Rel.Self; Rel.Ancestor; Rel.Descendant; Rel.Before; Rel.After ];
  Alcotest.check rel "anc/desc" Rel.Descendant (Rel.inverse Rel.Ancestor);
  Alcotest.check rel "before/after" Rel.After (Rel.inverse Rel.Before)

let test_rel_order () =
  Alcotest.(check int) "self" 0 (Rel.to_order Rel.Self);
  Alcotest.(check int) "ancestor first" (-1) (Rel.to_order Rel.Ancestor);
  Alcotest.(check int) "before first" (-1) (Rel.to_order Rel.Before);
  Alcotest.(check int) "after last" 1 (Rel.to_order Rel.After);
  Alcotest.(check string) "printing" "ancestor" (Rel.to_string Rel.Ancestor)

(* ------------------------------------------------------------------ *)
(* Ktable                                                              *)
(* ------------------------------------------------------------------ *)

let sample_rows =
  [
    { K.global = 1; root_local = 1; fanout = 4 };
    { K.global = 2; root_local = 2; fanout = 2 };
    { K.global = 3; root_local = 3; fanout = 3 };
    { K.global = 10; root_local = 9; fanout = 2 };
  ]

let test_ktable_lookup () =
  let t = K.make sample_rows in
  Alcotest.(check int) "size" 4 (K.size t);
  Alcotest.(check int) "fanout" 3 (K.fanout t 3);
  Alcotest.(check int) "root_local" 9 (K.root_local t 10);
  Alcotest.(check bool) "mem" true (K.mem t 2);
  Alcotest.(check bool) "not mem" false (K.mem t 7);
  Alcotest.check_raises "missing raises" Not_found (fun () ->
      ignore (K.fanout t 99))

let test_ktable_duplicates () =
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Ktable.make: duplicate global index") (fun () ->
      ignore (K.make (sample_rows @ [ { K.global = 2; root_local = 5; fanout = 1 } ])))

let test_ktable_update () =
  let t = K.make sample_rows in
  let t = K.with_row t { K.global = 2; root_local = 7; fanout = 6 } in
  Alcotest.(check int) "replaced" 7 (K.root_local t 2);
  let t = K.with_row t { K.global = 5; root_local = 4; fanout = 1 } in
  Alcotest.(check int) "inserted keeps order" 5 (K.size t);
  Alcotest.(check (list int)) "sorted globals" [ 1; 2; 3; 5; 10 ]
    (List.map (fun r -> r.K.global) (K.rows t));
  let t = K.without t 3 in
  Alcotest.(check bool) "removed" false (K.mem t 3);
  Alcotest.(check int) "memory words" (3 * 4) (K.memory_words t)

let test_ktable_frame_children () =
  let t = K.make sample_rows in
  (* kappa = 4: frame children of 1 occupy globals 2..5. *)
  Alcotest.(check (list int)) "children of area 1" [ 2; 3 ]
    (List.map
       (fun r -> r.K.global)
       (K.frame_children_rows t ~parent_global:1 ~kappa:4));
  Alcotest.(check (option int)) "area rooted at local 3" (Some 3)
    (K.area_rooted_at t ~parent_global:1 ~kappa:4 ~local:3);
  Alcotest.(check (option int)) "no area at local 4" None
    (K.area_rooted_at t ~parent_global:1 ~kappa:4 ~local:4)

(* ------------------------------------------------------------------ *)
(* Eval value coercions                                                *)
(* ------------------------------------------------------------------ *)

let test_coercions () =
  Alcotest.(check bool) "num true" true (Eval.to_bool (Eval.Num 2.));
  Alcotest.(check bool) "num false" false (Eval.to_bool (Eval.Num 0.));
  Alcotest.(check bool) "nan false" false (Eval.to_bool (Eval.Num Float.nan));
  Alcotest.(check bool) "empty string" false (Eval.to_bool (Eval.Str ""));
  Alcotest.(check bool) "empty set" false (Eval.to_bool (Eval.Nodes []));
  Alcotest.(check string) "int rendering" "42" (Eval.to_str (Eval.Num 42.));
  Alcotest.(check string) "bool rendering" "true" (Eval.to_str (Eval.Bool true));
  Alcotest.(check (float 0.001)) "str to num" 3.5 (Eval.to_num (Eval.Str " 3.5 "));
  Alcotest.(check bool) "junk to nan" true
    (Float.is_nan (Eval.to_num (Eval.Str "abc")))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let root = t "a" [ t "b" [ t "c" []; t "d" [] ]; t "e" [] ] in
  let s = Rxml.Stats.compute root in
  Alcotest.(check int) "nodes" 5 s.Rxml.Stats.nodes;
  Alcotest.(check int) "max fanout" 2 s.Rxml.Stats.max_fanout;
  Alcotest.(check int) "depth" 2 s.Rxml.Stats.max_depth;
  Alcotest.(check int) "leaves" 3 s.Rxml.Stats.leaves;
  Alcotest.(check (list (pair int int))) "histogram" [ (0, 3); (2, 2) ]
    (Rxml.Stats.fanout_histogram root)

let suite =
  [
    Alcotest.test_case "Rel inverse" `Quick test_rel_inverse;
    Alcotest.test_case "Rel ordering" `Quick test_rel_order;
    Alcotest.test_case "Ktable lookup" `Quick test_ktable_lookup;
    Alcotest.test_case "Ktable duplicates" `Quick test_ktable_duplicates;
    Alcotest.test_case "Ktable update" `Quick test_ktable_update;
    Alcotest.test_case "Ktable frame children" `Quick test_ktable_frame_children;
    Alcotest.test_case "Eval coercions" `Quick test_coercions;
    Alcotest.test_case "Stats" `Quick test_stats;
  ]
