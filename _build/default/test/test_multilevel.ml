module Dom = Rxml.Dom
module ML = Ruid.Multilevel
module R2 = Ruid.Ruid2
module B = Bignum.Bignat
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let mlid = Alcotest.testable ML.pp_id ML.id_equal

let build ?(levels = 3) ?(area = 8) root =
  ML.build ~levels ~max_area_size:area root

let test_levels_counting () =
  (* A tiny tree yields a single area: recursion stops at 2 levels. *)
  let small = t "a" [ t "b" [] ] in
  Alcotest.(check int) "small doc stays 2-level" 2 (ML.levels (build small));
  let big = Shape.generate ~seed:1 ~target:600 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let ml = build ~levels:3 ~area:6 big in
  Alcotest.(check int) "large doc reaches 3 levels" 3 (ML.levels ml)

let test_component_count_matches_levels () =
  let root = Shape.generate ~seed:4 ~target:500 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let ml = build ~levels:4 ~area:5 root in
  let l = ML.levels ml in
  Dom.iter_preorder
    (fun n ->
      let i = ML.id_of_node ml n in
      Alcotest.(check int) "one component per level below the top" (l - 1)
        (List.length i.ML.components))
    root

(* Definition 4 / Example 3: the 3-level identifier refines the 2-level one
   by decomposing the top UID, keeping the base component unchanged. *)
let test_decomposition_consistency () =
  let root = Shape.generate ~seed:9 ~target:400 (Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }) in
  let two = ML.build ~levels:2 ~max_area_size:8 root in
  (* Build the 3-level numbering over a clone so the 2-level stays valid. *)
  let three = ML.build ~levels:3 ~max_area_size:8 root in
  Dom.iter_preorder
    (fun n ->
      let i2 = ML.id_of_node two n in
      let i3 = ML.id_of_node three n in
      (* The base-level (last) component is identical in both forms. *)
      let last l = List.nth l (List.length l - 1) in
      Alcotest.(check bool) "base component preserved" true
        (last i2.ML.components = last i3.ML.components))
    root

let test_round_trip () =
  let root = Shape.generate ~seed:21 ~target:700 (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  let ml = build ~levels:3 ~area:7 root in
  ML.check_consistency ml;
  Dom.iter_preorder
    (fun n ->
      match ML.node_of_id ml (ML.id_of_node ml n) with
      | Some m -> Alcotest.(check int) "round trip" n.Dom.serial m.Dom.serial
      | None -> Alcotest.fail "identifier did not resolve")
    root

let test_parent () =
  let root = Shape.generate ~seed:33 ~target:300 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let ml = build ~levels:3 ~area:6 root in
  Dom.iter_preorder
    (fun n ->
      let i = ML.id_of_node ml n in
      match (ML.parent ml i, n.Dom.parent) with
      | None, None -> ()
      | Some p, Some dp -> Alcotest.check mlid "parent id" (ML.id_of_node ml dp) p
      | Some _, None -> Alcotest.fail "root got a parent"
      | None, Some _ -> Alcotest.fail "lost a parent")
    root

let test_relationship_oracle () =
  let root = Shape.generate ~seed:41 ~target:250 (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }) in
  let ml = build ~levels:3 ~area:5 root in
  let rng = Rng.create 12 in
  for _ = 1 to 150 do
    let a = Shape.random_node rng root in
    let b = Shape.random_node rng root in
    Alcotest.check rel "relationship"
      (dom_relation root a b)
      (ML.relationship ml (ML.id_of_node ml a) (ML.id_of_node ml b))
  done

let test_updates_through_multilevel () =
  let root = Shape.generate ~seed:55 ~target:200 (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }) in
  let ml = build ~levels:3 ~area:8 root in
  let rng = Rng.create 3 in
  for _ = 1 to 30 do
    let parent = Shape.random_node rng root in
    let pos = Rng.int rng (Dom.degree parent + 1) in
    ignore (ML.insert_node ml ~parent ~pos (Dom.element "ins"))
  done;
  ML.check_consistency ml;
  (* identifiers still resolve and relations hold *)
  for _ = 1 to 60 do
    let a = Shape.random_node rng root in
    let b = Shape.random_node rng root in
    Alcotest.check rel "post-update relationship"
      (dom_relation root a b)
      (ML.relationship ml (ML.id_of_node ml a) (ML.id_of_node ml b))
  done

let test_addressable () =
  Alcotest.(check string) "e^m" "1000000" (B.to_string (ML.addressable ~e:100 ~levels:3));
  (* Section 3.1: with e = 2^61 per level, 2 levels cover 2^122 nodes. *)
  Alcotest.(check int) "2 levels of 61-bit UIDs" 123
    (B.bit_length (ML.addressable ~e:2305843009213693952 ~levels:2))

let test_component_bits_bounded () =
  (* Multilevel keeps individual indices small even where flat UID blows
     up: a wide DBLP-like document. *)
  let root = Rworkload.Dblp.generate ~seed:2 ~publications:400 in
  let ml = build ~levels:3 ~area:16 root in
  Alcotest.(check bool)
    (Printf.sprintf "component bits %d stay small" (ML.max_component_bits ml))
    true
    (ML.max_component_bits ml <= 24)

let test_pp () =
  let root = t "a" [ t "b" []; t "c" [] ] in
  let ml = build root in
  let i = ML.id_of_node ml root in
  Alcotest.(check string) "root renders" "{1, (1, true)}" (ML.id_to_string i)

let suite =
  [
    Alcotest.test_case "level counting" `Quick test_levels_counting;
    Alcotest.test_case "component count" `Quick test_component_count_matches_levels;
    Alcotest.test_case "Example 3: decomposition consistency" `Quick test_decomposition_consistency;
    Alcotest.test_case "identifier round trip" `Quick test_round_trip;
    Alcotest.test_case "parent derivation" `Quick test_parent;
    Alcotest.test_case "relationship oracle" `Quick test_relationship_oracle;
    Alcotest.test_case "updates" `Quick test_updates_through_multilevel;
    Alcotest.test_case "Section 3.1 capacity" `Quick test_addressable;
    Alcotest.test_case "component bits bounded" `Quick test_component_bits_bounded;
    Alcotest.test_case "identifier printing" `Quick test_pp;
  ]
