module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Pp = Rxpath.Pathplan
module Ti = Rxpath.Tag_index
module Shape = Rworkload.Shape
open Util

let setup () =
  let site = Rworkload.Xmark.generate ~seed:3 ~scale:1.0 in
  let doc = Dom.document () in
  Dom.append_child doc site;
  let r2 = R2.number ~max_area_size:16 doc in
  (doc, r2, Ti.create r2, Rxpath.Engine_naive.create doc)

let plannable =
  [
    "/site/regions/africa/item";
    "//item/name";
    "//closed_auction//listitem";
    "/site//bidder/increase";
    "//parlist//text";
    "//open_auction/bidder";
    "/site/people/person/profile/interest";
  ]

let not_plannable =
  [
    "//item[1]/name";                (* predicate *)
    "//item/*";                      (* wildcard *)
    "//listitem/ancestor::item";     (* other axis *)
    "//title/text()";                (* text test *)
    "//person[@id='person1']";       (* predicate *)
    "..";                            (* parent *)
  ]

let test_compile_recognizes () =
  List.iter
    (fun q ->
      match Pp.compile (Rxpath.Xparser.parse q) with
      | Some _ -> ()
      | None -> Alcotest.failf "%s should be plannable" q)
    plannable;
  List.iter
    (fun q ->
      match Pp.compile (Rxpath.Xparser.parse q) with
      | None -> ()
      | Some _ -> Alcotest.failf "%s should not be plannable" q)
    not_plannable

let test_plan_matches_eval () =
  let _doc, r2, index, naive = setup () in
  List.iter
    (fun q ->
      match Pp.query r2 index q with
      | None -> Alcotest.failf "%s did not compile" q
      | Some planned ->
        check_node_list q (Rxpath.Eval.query naive q) planned)
    plannable

let test_plan_with_context () =
  let doc, r2, index, naive = setup () in
  let site = Dom.root_element doc in
  let regions = List.find (fun n -> Dom.tag n = "regions") site.Dom.children in
  match Pp.query r2 index ~context:regions "africa/item/name" with
  | None -> Alcotest.fail "relative plan did not compile"
  | Some planned ->
    check_node_list "relative from context"
      (Rxpath.Eval.query naive ~context:regions "africa/item/name")
      planned

let test_plan_printing () =
  let p = Option.get (Pp.compile (Rxpath.Xparser.parse "//a/b//c")) in
  Alcotest.(check string) "round trip" "//a/b//c"
    (Format.asprintf "%a" Pp.pp_plan p);
  let p = Option.get (Pp.compile (Rxpath.Xparser.parse "/x//y")) in
  Alcotest.(check string) "absolute" "/x//y" (Format.asprintf "%a" Pp.pp_plan p)

let test_tag_index () =
  let _doc, r2, index, _ = setup () in
  Alcotest.(check bool) "items indexed" true (Ti.cardinality index "item" > 0);
  Alcotest.(check int) "unknown tag" 0 (Ti.cardinality index "zzz");
  (* Postings are in document order. *)
  let items = Ti.find index "item" in
  let sorted =
    List.sort (fun a b -> R2.doc_order r2 (R2.id_of_node r2 a) (R2.id_of_node r2 b)) items
  in
  check_node_list "document order" sorted items;
  Alcotest.(check int) "total counts elements"
    (List.length (List.filter Dom.is_element (R2.all_nodes r2)))
    (Ti.total index)

let prop_plan_equals_eval_random =
  Util.qtest ~count:25 "plans agree with the evaluator on random documents"
    QCheck.(int_range 20 200)
    (fun n ->
      let root =
        Shape.generate ~seed:(n * 7) ~tags:[| "a"; "b"; "c" |] ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
      in
      let r2 = R2.number ~max_area_size:8 root in
      let index = Ti.create r2 in
      let naive = Rxpath.Engine_naive.create root in
      List.for_all
        (fun q ->
          match Pp.query r2 index q with
          | None -> false
          | Some planned ->
            List.map (fun x -> x.Dom.serial) planned
            = List.map (fun x -> x.Dom.serial) (Rxpath.Eval.query naive q))
        [ "//a/b"; "//b//c"; "//a//b/c"; "//c" ])

let suite =
  [
    Alcotest.test_case "compile recognition" `Quick test_compile_recognizes;
    Alcotest.test_case "plans match the evaluator" `Quick test_plan_matches_eval;
    Alcotest.test_case "relative plans" `Quick test_plan_with_context;
    Alcotest.test_case "plan printing" `Quick test_plan_printing;
    Alcotest.test_case "tag index" `Quick test_tag_index;
    prop_plan_equals_eval_random;
  ]
