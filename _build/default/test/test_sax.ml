module Sax = Rxml.Sax
module Dom = Rxml.Dom
module Shape = Rworkload.Shape

let events src =
  List.rev (Sax.fold src ~init:[] ~f:(fun acc e -> e :: acc))

let test_event_stream () =
  let evs = events "<a x='1'><b>hi</b><!--c--><?p d?></a>" in
  match evs with
  | [ Sax.Start_element { tag = "a"; attrs = [ ("x", "1") ] };
      Sax.Start_element { tag = "b"; attrs = [] };
      Sax.Text "hi";
      Sax.End_element "b";
      Sax.Comment "c";
      Sax.Pi ("p", "d");
      Sax.End_element "a" ] -> ()
  | _ -> Alcotest.failf "unexpected stream of %d events" (List.length evs)

let test_self_closing () =
  match events "<a><b/></a>" with
  | [ Sax.Start_element { tag = "a"; _ }; Sax.Start_element { tag = "b"; _ };
      Sax.End_element "b"; Sax.End_element "a" ] -> ()
  | _ -> Alcotest.fail "self-closing elements emit start+end"

let test_entities_and_cdata () =
  match events "<a>&lt;x&gt;<![CDATA[ & raw ]]></a>" with
  | [ Sax.Start_element _; Sax.Text t; Sax.End_element _ ] ->
    Alcotest.(check string) "merged text" "<x> & raw " t
  | _ -> Alcotest.fail "expected one merged text event"

let test_count_and_depth () =
  let src = "<r><x><y/><y/></x><x/></r>" in
  let counts = Sax.count_elements src in
  Alcotest.(check (option int)) "x count" (Some 2) (Hashtbl.find_opt counts "x");
  Alcotest.(check (option int)) "y count" (Some 2) (Hashtbl.find_opt counts "y");
  Alcotest.(check int) "depth" 3 (Sax.max_depth src)

let test_errors () =
  List.iter
    (fun src ->
      match Sax.iter src ~f:(fun _ -> ()) with
      | exception Rxml.Parser.Parse_error _ -> ()
      | () -> Alcotest.failf "expected error for %S" src)
    [ "<a><b></a>"; "<a>"; "</a>"; "<a/><b/>"; "text"; "" ]

let test_build_dom_equivalence () =
  List.iter
    (fun src ->
      let via_parser = Rxml.Parser.parse_string ~keep_whitespace:true src in
      let via_sax = Sax.build_dom ~keep_whitespace:true src in
      Alcotest.(check string) src
        (Rxml.Serializer.to_string via_parser)
        (Rxml.Serializer.to_string via_sax))
    [
      "<a><b>x</b><c y='2'/></a>";
      "<a>  <b/>  </a>";
      "<r><![CDATA[<raw>]]>&amp;</r>";
      "<a><!--note--><?pi data?></a>";
    ]

let prop_sax_matches_parser =
  Util.qtest ~count:40 "SAX DOM equals parser DOM on generated documents"
    QCheck.(int_range 1 80)
    (fun n ->
      let root =
        Shape.generate ~seed:(n * 11) ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
      in
      let src = Rxml.Serializer.to_string root in
      Rxml.Serializer.to_string (Sax.build_dom src)
      = Rxml.Serializer.to_string (Rxml.Parser.parse_string src))

let test_streaming_large_doc () =
  (* Count a 50k-element document without building a tree. *)
  let root = Rworkload.Dblp.generate ~seed:4 ~publications:2_000 in
  let src = Rxml.Serializer.to_string root in
  let counts = Sax.count_elements src in
  Alcotest.(check (option int)) "publications counted" (Some 2000)
    (match
       ( Hashtbl.find_opt counts "article",
         Hashtbl.find_opt counts "inproceedings" )
     with
    | Some a, Some b -> Some (a + b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None)

let suite =
  [
    Alcotest.test_case "event stream" `Quick test_event_stream;
    Alcotest.test_case "self-closing" `Quick test_self_closing;
    Alcotest.test_case "entities and CDATA merge" `Quick test_entities_and_cdata;
    Alcotest.test_case "count/depth one-pass" `Quick test_count_and_depth;
    Alcotest.test_case "malformed input" `Quick test_errors;
    Alcotest.test_case "build_dom equals parser" `Quick test_build_dom_equivalence;
    prop_sax_matches_parser;
    Alcotest.test_case "streaming a large document" `Quick test_streaming_large_doc;
  ]
