module Dom = Rxml.Dom
module P = Rxml.Parser
module X = Rxpath.Xparser
module Ast = Rxpath.Ast
module Eval = Rxpath.Eval
module Shape = Rworkload.Shape

let doc () =
  P.parse_string
    {|<library>
        <shelf id="s1">
          <book year="2001"><title>Data on the Web</title><author>Abiteboul</author></book>
          <book year="1999"><title>Transaction Processing</title><author>Gray</author></book>
        </shelf>
        <shelf id="s2">
          <book year="2001"><title>Foundations of Databases</title><author>Abiteboul</author></book>
          <journal><title>TODS</title></journal>
        </shelf>
      </library>|}

let naive_engine root = Rxpath.Engine_naive.create root
let ruid_engine root = Rxpath.Engine_ruid.create (Ruid.Ruid2.number ~max_area_size:6 root)

let tags nodes = List.map Dom.tag nodes

let titles eng q =
  Eval.query eng q |> List.map Dom.text_content

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_shapes () =
  let p = X.parse "/a/b" in
  Alcotest.(check bool) "absolute" true p.Ast.absolute;
  Alcotest.(check int) "two steps" 2 (List.length p.Ast.steps);
  let p = X.parse "//b" in
  Alcotest.(check int) "// expands to two steps" 2 (List.length p.Ast.steps);
  (match p.Ast.steps with
  | [ s1; s2 ] ->
    Alcotest.(check string) "descendant-or-self first" "descendant-or-self"
      (Ast.axis_name s1.Ast.axis);
    Alcotest.(check string) "child second" "child" (Ast.axis_name s2.Ast.axis)
  | _ -> Alcotest.fail "expected two steps");
  let p = X.parse "a//b" in
  Alcotest.(check int) "inner // expands" 3 (List.length p.Ast.steps);
  let p = X.parse "ancestor::x[2]" in
  (match p.Ast.steps with
  | [ s ] ->
    Alcotest.(check string) "explicit axis" "ancestor" (Ast.axis_name s.Ast.axis);
    Alcotest.(check int) "one predicate" 1 (List.length s.Ast.preds)
  | _ -> Alcotest.fail "expected one step")

let test_parse_to_string_round_trip () =
  List.iter
    (fun q ->
      let p = X.parse q in
      let p2 = X.parse (Ast.path_to_string p) in
      Alcotest.(check string) q (Ast.path_to_string p) (Ast.path_to_string p2))
    [
      "/a/b/c";
      "//book[@year='2001']";
      "a/*/b";
      "book[position()=last()]";
      "//shelf/book[2]/title";
      "descendant::book[count(author)>1 or @year=1999]";
      ".//title";
      "../book";
      "self::node()";
      "//book[not(@year)]";
      "a[b and c]";
      "text()";
    ]

let test_parse_errors () =
  List.iter
    (fun q ->
      match X.parse q with
      | exception X.Syntax_error _ -> ()
      | _ -> Alcotest.failf "expected syntax error for %S" q)
    [ ""; "/a["; "a]"; "a/"; "@"; "a[]"; "foo::x"; "'unclosed" ]

(* ------------------------------------------------------------------ *)
(* Semantics on the library document (both engines)                    *)
(* ------------------------------------------------------------------ *)

let engines () =
  let d1 = doc () and d2 = doc () in
  [ ("naive", naive_engine d1); ("ruid", ruid_engine d2) ]

let both check_fn = List.iter (fun (name, eng) -> check_fn name eng) (engines ())

let test_child_paths () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": /library/shelf") 2
        (List.length (Eval.query eng "/library/shelf"));
      Alcotest.(check int)
        (name ^ ": /library/shelf/book") 3
        (List.length (Eval.query eng "/library/shelf/book")))

let test_descendant () =
  both (fun name eng ->
      Alcotest.(check int) (name ^ ": //book") 3
        (List.length (Eval.query eng "//book"));
      Alcotest.(check int) (name ^ ": //title") 4
        (List.length (Eval.query eng "//title"));
      Alcotest.(check (list string))
        (name ^ ": //journal/title text")
        [ "TODS" ]
        (titles eng "//journal/title"))

let test_attribute_predicates () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": year 2001") 2
        (List.length (Eval.query eng "//book[@year='2001']"));
      Alcotest.(check int)
        (name ^ ": numeric compare") 1
        (List.length (Eval.query eng "//book[@year<2000]"));
      Alcotest.(check int)
        (name ^ ": missing attr") 0
        (List.length (Eval.query eng "//book[@missing]")))

let test_positional () =
  both (fun name eng ->
      Alcotest.(check (list string))
        (name ^ ": second book of first shelf")
        [ "Transaction ProcessingGray" ]
        (Eval.query eng "/library/shelf[1]/book[2]" |> List.map Dom.text_content);
      Alcotest.(check int)
        (name ^ ": last()") 2
        (List.length (Eval.query eng "//shelf/book[position()=last()]")))

let test_wildcard_and_grandparent () =
  (* The paper's element1/*/element2 pattern (Section 3.5). *)
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": library/*/book via wildcard") 3
        (List.length (Eval.query eng "/library/*/book"));
      Alcotest.(check (list string))
        (name ^ ": shelf/*/title")
        [ "Data on the Web"; "Transaction Processing";
          "Foundations of Databases"; "TODS" ]
        (titles eng "//shelf/*/title"))

let test_reverse_axes () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": ancestors of titles") 4
        (List.length (Eval.query eng "//title/ancestor::shelf") + 2);
      (* 4 titles but only 2 distinct shelves: dedup check. *)
      Alcotest.(check int)
        (name ^ ": distinct shelves") 2
        (List.length (Eval.query eng "//title/ancestor::shelf"));
      Alcotest.(check int)
        (name ^ ": parent of authors") 3
        (List.length (Eval.query eng "//author/..")))

let test_sibling_axes () =
  both (fun name eng ->
      Alcotest.(check (list string))
        (name ^ ": following siblings of first book")
        [ "book" ]
        (tags (Eval.query eng "/library/shelf[1]/book[1]/following-sibling::*"));
      Alcotest.(check (list string))
        (name ^ ": preceding sibling of journal")
        [ "book" ]
        (tags (Eval.query eng "//journal/preceding-sibling::*")))

let test_preceding_following () =
  both (fun name eng ->
      (* journal follows all three books in document order *)
      Alcotest.(check int)
        (name ^ ": books preceding journal") 3
        (List.length (Eval.query eng "//journal/preceding::book"));
      Alcotest.(check int)
        (name ^ ": titles following first shelf") 2
        (List.length (Eval.query eng "/library/shelf[1]/following::title")))

let test_boolean_predicates () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": and") 1
        (List.length (Eval.query eng "//book[@year='2001' and author='Gray' or title='Data on the Web']"));
      Alcotest.(check int)
        (name ^ ": not()") 1
        (List.length (Eval.query eng "//shelf[not(journal)]") );
      Alcotest.(check int)
        (name ^ ": count()") 2
        (List.length (Eval.query eng "//shelf[count(book)>=1]")))

let test_text_nodes () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": text() under titles") 4
        (List.length (Eval.query eng "//title/text()")))

let test_attribute_values () =
  both (fun name eng ->
      match Eval.eval eng (X.parse "//shelf/@id") with
      | Eval.Attrs vs -> Alcotest.(check (list string)) name [ "s1"; "s2" ] vs
      | _ -> Alcotest.fail "expected attribute values")

(* ------------------------------------------------------------------ *)
(* Engine equivalence on random documents                              *)
(* ------------------------------------------------------------------ *)

let query_pool =
  [
    "//a"; "//b//c"; "/*/*"; "//d/ancestor::a"; "//c/.."; "//a/following::b";
    "//b/preceding::c"; "//a/following-sibling::*"; "//c[1]"; "//b[last()]";
    "//a[b]"; "//*[count(*)>2]"; "descendant::d[position()=2]";
    "//a/descendant-or-self::b"; "//b/ancestor-or-self::*"; "//a/self::a";
  ]

let serials nodes = List.map (fun n -> n.Dom.serial) nodes

let prop_engines_agree =
  Util.qtest ~count:40 "naive and ruid engines agree"
    QCheck.(pair (int_range 5 150) (int_range 2 30))
    (fun (n, area) ->
      let root =
        Shape.generate ~seed:(n * 37 + area)
          ~tags:[| "a"; "b"; "c"; "d" |]
          ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
      in
      let ne = Rxpath.Engine_naive.create root in
      let re = Rxpath.Engine_ruid.create (Ruid.Ruid2.number ~max_area_size:area root) in
      List.for_all
        (fun q -> serials (Eval.query ne q) = serials (Eval.query re q))
        query_pool)

let test_engines_agree_on_library () =
  let d1 = doc () and d2 = doc () in
  let ne = naive_engine d1 and re = ruid_engine d2 in
  List.iter
    (fun q ->
      Alcotest.(check (list string))
        (Printf.sprintf "tags for %s" q)
        (tags (Eval.query ne q))
        (tags (Eval.query re q)))
    [
      "//book"; "//title"; "//book/ancestor::shelf"; "//journal/preceding::book";
      "//shelf/*"; "/library//author"; "//book[@year='2001']/title";
      "//shelf[2]/book[1]"; "//title/following::*"; "//author/preceding-sibling::title";
    ]

let test_union () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": //book | //journal") 4
        (List.length (Eval.query eng "//book | //journal"));
      (* Union results are merged in document order without duplicates. *)
      Alcotest.(check int)
        (name ^ ": overlapping union dedups") 3
        (List.length (Eval.query eng "//book | //shelf/book"));
      let serial_list q = List.map (fun n -> n.Dom.serial) (Eval.query eng q) in
      Alcotest.(check (list int))
        (name ^ ": document order across branches")
        (serial_list "//*[name()='book' or name()='journal']")
        (serial_list "//journal | //book"))

let test_string_functions () =
  both (fun name eng ->
      Alcotest.(check int)
        (name ^ ": contains") 2
        (List.length (Eval.query eng "//title[contains(., 'Data')]"));
      Alcotest.(check int)
        (name ^ ": starts-with") 1
        (List.length (Eval.query eng "//author[starts-with(., 'Gr')]"));
      Alcotest.(check int)
        (name ^ ": string-length") 1
        (List.length (Eval.query eng "//title[string-length(.)=4]"));
      Alcotest.(check int)
        (name ^ ": name()") 3
        (List.length (Eval.query eng "//shelf/*[name()='book']")))

let test_union_parse_errors () =
  List.iter
    (fun q ->
      match X.parse_union q with
      | exception X.Syntax_error _ -> ()
      | _ -> Alcotest.failf "expected syntax error for %S" q)
    [ "|//a"; "//a |"; "//a | | //b" ]

let suite =
  [
    Alcotest.test_case "parse shapes" `Quick test_parse_shapes;
    Alcotest.test_case "union expressions" `Quick test_union;
    Alcotest.test_case "string functions" `Quick test_string_functions;
    Alcotest.test_case "union parse errors" `Quick test_union_parse_errors;
    Alcotest.test_case "parse/print round-trip" `Quick test_parse_to_string_round_trip;
    Alcotest.test_case "syntax errors" `Quick test_parse_errors;
    Alcotest.test_case "child paths" `Quick test_child_paths;
    Alcotest.test_case "descendant paths" `Quick test_descendant;
    Alcotest.test_case "attribute predicates" `Quick test_attribute_predicates;
    Alcotest.test_case "positional predicates" `Quick test_positional;
    Alcotest.test_case "wildcard grandparent pattern" `Quick test_wildcard_and_grandparent;
    Alcotest.test_case "reverse axes" `Quick test_reverse_axes;
    Alcotest.test_case "sibling axes" `Quick test_sibling_axes;
    Alcotest.test_case "preceding/following" `Quick test_preceding_following;
    Alcotest.test_case "boolean predicates" `Quick test_boolean_predicates;
    Alcotest.test_case "text nodes" `Quick test_text_nodes;
    Alcotest.test_case "attribute values" `Quick test_attribute_values;
    Alcotest.test_case "engines agree on library doc" `Quick test_engines_agree_on_library;
    prop_engines_agree;
  ]
