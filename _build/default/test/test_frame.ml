module Dom = Rxml.Dom
module Frame = Ruid.Frame
module Shape = Rworkload.Shape
open Util

let uniform lo hi = Shape.Uniform { fanout_lo = lo; fanout_hi = hi }

let test_single_area () =
  let root = t "a" [ t "b" []; t "c" [ t "d" [] ] ] in
  let f = Frame.partition ~max_area_size:100 root in
  Alcotest.(check int) "one area" 1 (Frame.area_count f);
  Alcotest.(check bool) "root is area root" true (Frame.is_area_root f root);
  Alcotest.(check int) "members = all nodes" 4
    (List.length (Frame.area_members f root));
  Frame.check_invariants f

let test_explicit_cut () =
  (* <a><b><c/><d/></b><e/></a> cut at b. *)
  let c = t "c" [] and d = t "d" [] in
  let b = t "b" [ ] in
  Dom.append_child b c;
  Dom.append_child b d;
  let e = t "e" [] in
  let a = t "a" [] in
  Dom.append_child a b;
  Dom.append_child a e;
  let f = Frame.of_cut_set a [ b ] in
  Alcotest.(check int) "two areas" 2 (Frame.area_count f);
  check_node_list "area of a: a, b (joint leaf), e" [ a; b; e ]
    (Frame.area_members f a);
  check_node_list "area of b: b, c, d" [ b; c; d ] (Frame.area_members f b);
  check_node_list "frame children of a" [ b ] (Frame.frame_children f a);
  Alcotest.(check bool) "frame parent of b is a" true
    (match Frame.frame_parent f b with Some p -> Dom.equal p a | None -> false);
  Alcotest.(check int) "area fanout of a counts only internal nodes" 2
    (Frame.area_fanout f a);
  Alcotest.(check int) "area fanout of b" 2 (Frame.area_fanout f b);
  check_node_list "c enumerated in area b" [ b ] [ Frame.area_root_of f c ];
  check_node_list "b enumerated in area a" [ a ] [ Frame.area_root_of f b ];
  check_node_list "own area of b is b" [ b ] [ Frame.own_area_root f b ];
  Frame.check_invariants f

let test_partition_respects_budget () =
  let root = Shape.generate ~seed:42 ~target:500 (uniform 1 4) in
  let f = Frame.partition ~max_area_size:32 root in
  Frame.check_invariants f;
  Alcotest.(check bool) "several areas" true (Frame.area_count f > 4);
  List.iter
    (fun r ->
      let size = List.length (Frame.area_members f r) in
      (* The greedy cut may overshoot by the trailing joint leaves of one
         node's children, never by more than the tree's maximal fan-out. *)
      Alcotest.(check bool)
        (Printf.sprintf "area size %d within slack" size)
        true
        (size <= 32 + Rxml.Stats.(compute root).max_fanout))
    (Frame.area_roots f)

let test_every_node_covered () =
  let root = Shape.generate ~seed:7 ~target:300 (uniform 0 5) in
  let f = Frame.partition ~max_area_size:20 root in
  Frame.check_invariants f;
  (* Sum of (members - 1) over all areas + 1 (tree root) = node count. *)
  let total =
    List.fold_left
      (fun acc r -> acc + List.length (Frame.area_members f r) - 1)
      1 (Frame.area_roots f)
  in
  Alcotest.(check int) "coverage" (Dom.size root) total

let test_adjust_fanout () =
  (* A tree with max fan-out 2 whose natural greedy partition would give
     the frame a larger fan-out; Section 2.3 promotes branching nodes. *)
  let root = Shape.generate ~seed:11 ~target:800 (uniform 1 2) in
  let tree_fanout = Rxml.Stats.(compute root).max_fanout in
  let f = Frame.partition ~max_area_size:8 ~adjust:true root in
  Frame.check_invariants f;
  Alcotest.(check bool)
    (Printf.sprintf "frame fanout %d <= tree fanout %d" (Frame.frame_fanout f)
       tree_fanout)
    true
    (Frame.frame_fanout f <= tree_fanout)

let test_adjust_changes_something () =
  (* Without adjustment some seed must exceed the tree fan-out; otherwise
     the ablation experiment is vacuous.  Search a few seeds. *)
  let exists_violation =
    List.exists
      (fun seed ->
        let root = Shape.generate ~seed ~target:800 (uniform 1 2) in
        let tree_fanout = Rxml.Stats.(compute root).max_fanout in
        let f = Frame.partition ~max_area_size:8 ~adjust:false root in
        Frame.frame_fanout f > tree_fanout)
      [ 1; 2; 3; 11; 42; 99 ]
  in
  Alcotest.(check bool) "unadjusted partitions can exceed tree fan-out" true
    exists_violation

let test_frame_depth () =
  let root = Shape.chain ~depth:20 () in
  let f = Frame.partition ~max_area_size:5 root in
  Alcotest.(check bool) "chain partition has depth > 1" true (Frame.frame_depth f >= 2);
  Frame.check_invariants f

let prop_invariants_random =
  Util.qtest ~count:60 "partition invariants on random trees"
    QCheck.(pair (int_range 2 300) (int_range 2 40))
    (fun (n, area) ->
      let root = Shape.generate ~seed:(n + (area * 1000)) ~target:n (uniform 0 6) in
      let f = Frame.partition ~max_area_size:area root in
      Frame.check_invariants f;
      true)

let prop_area_root_of_is_ancestor =
  Util.qtest ~count:60 "area_root_of returns an ancestor-or-self"
    QCheck.(int_range 2 200)
    (fun n ->
      let root = Shape.generate ~seed:(n * 3) ~target:n (uniform 1 4) in
      let f = Frame.partition ~max_area_size:10 root in
      List.for_all
        (fun x ->
          let r = Frame.area_root_of f x in
          Dom.equal r x || Dom.is_ancestor ~anc:r ~desc:x)
        (Dom.preorder root))

let suite =
  [
    Alcotest.test_case "single area" `Quick test_single_area;
    Alcotest.test_case "explicit cut set" `Quick test_explicit_cut;
    Alcotest.test_case "budget respected" `Quick test_partition_respects_budget;
    Alcotest.test_case "full coverage" `Quick test_every_node_covered;
    Alcotest.test_case "Section 2.3 fan-out adjustment" `Quick test_adjust_fanout;
    Alcotest.test_case "adjustment is not vacuous" `Quick test_adjust_changes_something;
    Alcotest.test_case "frame depth on chains" `Quick test_frame_depth;
    prop_invariants_random;
    prop_area_root_of_is_ancestor;
  ]
