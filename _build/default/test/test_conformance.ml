(* XPath conformance against hand-computed expectations on a fixed document.
   Unlike the engine-equivalence properties (which would miss a bug shared
   by both engines), every expectation here was derived by hand. *)

module Dom = Rxml.Dom

let doc_text =
  {|<company>
      <dept name="eng">
        <team name="db">
          <emp id="e1"><name>Ada</name><salary>120</salary></emp>
          <emp id="e2"><name>Bob</name><salary>90</salary><lead/></emp>
        </team>
        <team name="ml">
          <emp id="e3"><name>Cleo</name><salary>150</salary><lead/></emp>
        </team>
      </dept>
      <dept name="ops">
        <emp id="e4"><name>Dan</name><salary>80</salary></emp>
      </dept>
      <note>restructuring planned</note>
    </company>|}

let engines () =
  let d1 = Rxml.Parser.parse_string doc_text in
  let d2 = Rxml.Parser.parse_string doc_text in
  [
    ("naive", Rxpath.Engine_naive.create d1);
    ("ruid", Rxpath.Engine_ruid.create (Ruid.Ruid2.number ~max_area_size:5 d2));
  ]

(* (query, expected count, expected concatenated text or "" to skip) *)
let expectations =
  [
    ("/company", 1, "");
    ("/company/dept", 2, "");
    ("/company/dept/team", 2, "");
    ("//emp", 4, "");
    ("//emp/name", 4, "AdaBobCleoDan");
    ("//team//name", 3, "AdaBobCleo");
    ("//emp[lead]", 2, "");
    ("//emp[lead]/name", 2, "BobCleo");
    ("//emp[not(lead)]/name", 2, "AdaDan");
    ("//emp[salary>100]/name", 2, "AdaCleo");
    ("//emp[salary>100][lead]/name", 1, "Cleo");
    ("//dept[@name='eng']//emp", 3, "");
    ("//dept[@name='ops']/emp/name", 1, "Dan");
    ("//team[1]/emp", 2, "");
    ("//team/emp[2]", 1, "");
    ("//team/emp[last()]/name", 2, "BobCleo");
    ("//emp[position()=1]/name", 3, "AdaCleoDan");
    ("/company/*", 3, "");
    ("/company/*[name()='note']", 1, "restructuring planned");
    ("//name[.='Ada']", 1, "Ada");
    ("//name[starts-with(., 'C')]", 1, "Cleo");
    ("//name[contains(., 'a')]", 2, "AdaDan");
    ("//salary[string-length(.)=2]", 2, "9080");
    ("//emp[name='Bob']/following-sibling::emp", 0, "");
    ("//emp[name='Ada']/following-sibling::emp/name", 1, "Bob");
    ("//lead/parent::emp/name", 2, "BobCleo");
    ("//lead/ancestor::team", 2, "");
    ("//lead/ancestor::dept", 1, "");
    ("//note/preceding::emp", 4, "");
    ("//emp[name='Cleo']/preceding::emp", 2, "");
    ("//emp[name='Ada']/following::emp", 3, "");
    ("//team[@name='ml']/preceding-sibling::team", 1, "");
    ("//emp/name | //note", 5, "");
    ("//dept[count(team)=0]", 1, "");
    ("//dept[count(.//emp)=3]", 1, "");
    ("//emp[salary<100 and lead]/name", 1, "Bob");
    ("//emp[salary<100 or lead]/name", 3, "BobCleoDan");
  ]

let test_expectations () =
  List.iter
    (fun (name, eng) ->
      List.iter
        (fun (q, count, text) ->
          let results = Rxpath.Eval.query eng q in
          Alcotest.(check int)
            (Printf.sprintf "%s: count %s" name q)
            count (List.length results);
          if text <> "" then
            Alcotest.(check string)
              (Printf.sprintf "%s: text %s" name q)
              text
              (String.concat "" (List.map Dom.text_content results)))
        expectations)
    (engines ())

let test_attribute_expectations () =
  List.iter
    (fun (name, eng) ->
      match Rxpath.Eval.eval eng (Rxpath.Xparser.parse "//dept/@name") with
      | Rxpath.Eval.Attrs vs ->
        Alcotest.(check (list string)) (name ^ ": dept names") [ "eng"; "ops" ] vs
      | _ -> Alcotest.fail "expected attribute values")
    (engines ())

let suite =
  [
    Alcotest.test_case "hand-computed expectations" `Quick test_expectations;
    Alcotest.test_case "attribute expectations" `Quick test_attribute_expectations;
  ]
