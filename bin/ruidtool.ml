(* ruidtool — command-line front end to the ruid library.

   Subcommands: generate, stats, number, parent, query, update-sim.
   Try: dune exec bin/ruidtool.exe -- number --help *)

open Cmdliner

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let input_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Input XML document.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let area_arg =
  Arg.(
    value
    & opt int 64
    & info [ "area" ] ~docv:"N"
        ~doc:"Maximal number of nodes enumerated per UID-local area.")

let load path = Rxml.Parser.parse_file path |> Dom.root_element

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("xmark", `Xmark); ("dblp", `Dblp); ("uniform", `Uniform);
                    ("deep", `Deep); ("chain", `Chain) ])
          `Xmark
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Document family: $(b,xmark), $(b,dblp), $(b,uniform), $(b,deep) or $(b,chain).")
  in
  let size =
    Arg.(
      value & opt int 1000
      & info [ "size" ] ~docv:"N" ~doc:"Approximate number of element nodes.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (default stdout).")
  in
  let run kind size seed out =
    let root =
      match kind with
      | `Xmark ->
        Rworkload.Xmark.generate ~seed ~scale:(float_of_int size /. 2000.)
      | `Dblp -> Rworkload.Dblp.generate ~seed ~publications:(max 1 (size / 12))
      | `Uniform ->
        Rworkload.Shape.generate ~seed ~target:size
          (Rworkload.Shape.Uniform { fanout_lo = 0; fanout_hi = 5 })
      | `Deep ->
        Rworkload.Shape.generate ~seed ~target:size
          (Rworkload.Shape.Deep { fanout = 3; bias = 0.85 })
      | `Chain -> Rworkload.Shape.chain ~depth:(max 1 (size - 1)) ()
    in
    let xml = Rxml.Serializer.to_string ~indent:2 root in
    match out with
    | None -> print_endline xml
    | Some path ->
      let oc = open_out path in
      output_string oc xml;
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %d nodes to %s\n" (Dom.size root) path
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic XML document.")
    Term.(const run $ kind $ size $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let run path =
    let root = load path in
    let st = Rxml.Stats.compute root in
    Format.printf "%a@." Rxml.Stats.pp st;
    print_endline "fan-out histogram (degree: nodes):";
    List.iter
      (fun (deg, count) -> Printf.printf "  %4d: %d\n" deg count)
      (Rxml.Stats.fanout_histogram root)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print shape statistics of a document.")
    Term.(const run $ input_arg)

(* ------------------------------------------------------------------ *)
(* number                                                              *)
(* ------------------------------------------------------------------ *)

let number_cmd =
  let show =
    Arg.(
      value & opt int 20
      & info [ "show" ] ~docv:"N" ~doc:"How many node identifiers to list.")
  in
  let run path area show =
    let root = load path in
    match R2.number ~max_area_size:area root with
    | r2 ->
      Printf.printf "nodes: %d   kappa: %d   areas: %d   aux memory: %d words\n"
        (Dom.size root) (R2.kappa r2) (R2.area_count r2)
        (R2.aux_memory_words r2);
      Format.printf "K table:@.%a@." Ruid.Ktable.pp (R2.ktable r2);
      Printf.printf "first %d identifiers (document order):\n" show;
      List.iteri
        (fun i n ->
          if i < show then
            Printf.printf "  %-24s %s\n"
              (Format.asprintf "%a" Dom.pp_kind n)
              (R2.id_to_string (R2.id_of_node r2 n)))
        (R2.all_nodes r2)
    | exception Ruid.Uid.Overflow ->
      print_endline
        "2-level numbering overflows on this document; multilevel view:";
      let m = Ruid.Mruid.build root in
      Printf.printf "levels: %d   K rows: %d   widest component: %d bits\n"
        (Ruid.Mruid.levels m) (Ruid.Mruid.area_count m)
        (Ruid.Mruid.max_component_bits m);
      List.iteri
        (fun i n ->
          if i < show then
            Printf.printf "  %-24s %s\n"
              (Format.asprintf "%a" Dom.pp_kind n)
              (Ruid.Mruid.id_to_string (Ruid.Mruid.id_of_node m n)))
        (Dom.preorder root)
  in
  Cmd.v
    (Cmd.info "number" ~doc:"Number a document with the 2-level ruid.")
    Term.(const run $ input_arg $ area_arg $ show)

(* ------------------------------------------------------------------ *)
(* parent                                                              *)
(* ------------------------------------------------------------------ *)

let id_of_string s =
  (* "(g, l, true)" or "g,l,r" *)
  let clean =
    String.map (fun c -> if c = '(' || c = ')' then ' ' else c) s
  in
  match String.split_on_char ',' clean |> List.map String.trim with
  | [ g; l; r ] ->
    { R2.global = int_of_string g; local = int_of_string l;
      is_root = bool_of_string r }
  | _ -> failwith "expected an identifier of the form (global, local, bool)"

let parent_cmd =
  let id =
    Arg.(
      required
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Identifier, e.g. '(2, 7, false)'.")
  in
  let run path area id_str =
    let root = load path in
    let r2 = R2.number ~max_area_size:area root in
    let id = id_of_string id_str in
    Printf.printf "rancestor chain of %s:\n" (R2.id_to_string id);
    List.iter
      (fun a ->
        let tag =
          match R2.node_of_id r2 a with
          | Some n -> Format.asprintf "%a" Dom.pp_kind n
          | None -> "(no such node)"
        in
        Printf.printf "  %-18s %s\n" (R2.id_to_string a) tag)
      (R2.rancestors r2 id)
  in
  Cmd.v
    (Cmd.info "parent"
       ~doc:"Derive the ancestor identifiers of a node from kappa and K alone.")
    Term.(const run $ input_arg $ area_arg $ id)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let query_cmd =
  let expr =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"XPATH" ~doc:"XPath location path.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("naive", `Naive); ("ruid", `Ruid) ]) `Ruid
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"$(b,naive) or $(b,ruid).")
  in
  let strategy =
    Arg.(
      value
      & opt
          (enum
             [ ("auto", Rxpath.Engine_ruid.Auto);
               ("range", Rxpath.Engine_ruid.Range);
               ("arith", Rxpath.Engine_ruid.Arith);
               ("walk", Rxpath.Engine_ruid.Walk) ])
          Rxpath.Engine_ruid.Auto
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Name-test strategy of the ruid engine: $(b,auto) (cost model), \
             $(b,range) (binary search over posting arrays), $(b,arith) \
             (per-candidate identifier arithmetic) or $(b,walk) (generate \
             the axis, test the tag).")
  in
  let run path area expr engine strategy =
    let doc = Rxml.Parser.parse_file path in
    let eng =
      match engine with
      | `Naive -> Rxpath.Engine_naive.create doc
      | `Ruid ->
        Rxpath.Engine_ruid.create ~strategy (R2.number ~max_area_size:area doc)
    in
    let results = Rxpath.Eval.query eng expr in
    Printf.printf "%d result(s)\n" (List.length results);
    List.iteri
      (fun i n ->
        if i < 25 then begin
          let text = Dom.text_content n in
          let text =
            if String.length text > 60 then String.sub text 0 57 ^ "..." else text
          in
          Printf.printf "  %-20s %s\n"
            (Format.asprintf "%a" Dom.pp_kind n)
            text
        end)
      results
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XPath expression over a document.")
    Term.(const run $ input_arg $ area_arg $ expr $ engine $ strategy)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let expr =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"XPATH" ~doc:"XPath location path (unions allowed).")
  in
  let run path area expr =
    let doc = Rxml.Parser.parse_file path in
    let planner = Rxpath.Planner.create (R2.number ~max_area_size:area doc) in
    match Rxpath.Planner.explain planner expr with
    | text -> print_string text
    | exception Rxpath.Xparser.Syntax_error msg ->
      prerr_endline ("ruidtool explain: bad XPath: " ^ msg);
      exit 2
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the query plan the cost-based planner picks for an XPath \
          expression — chosen strategy (chain structural join, twig \
          semijoin, DataGuide prune, or engine fallback), plan vs. engine \
          cost estimates, and a per-operator table of estimated vs. actual \
          cardinalities with timings (the query is executed once, \
          uncached, to measure them).")
    Term.(const run $ input_arg $ area_arg $ expr)

(* ------------------------------------------------------------------ *)
(* update-sim                                                          *)
(* ------------------------------------------------------------------ *)

let update_sim_cmd =
  let ops =
    Arg.(value & opt int 100 & info [ "ops" ] ~docv:"N" ~doc:"Number of edits.")
  in
  let run path ops seed =
    let base = load path in
    let script = Rworkload.Updates.script ~seed ~ops base in
    Printf.printf "replaying %d edits on %d nodes\n\n" ops (Dom.size base);
    Printf.printf "%-12s %16s %10s\n" "scheme" "ids rewritten" "worst op";
    List.iter
      (fun (module S : Ruid.Scheme.S) ->
        let tree = Dom.clone base in
        let t = S.build tree in
        let total = ref 0 and worst = ref 0 in
        List.iter
          (fun op ->
            let c =
              Rworkload.Updates.apply tree
                ~insert:(fun ~parent ~pos node -> S.insert t ~parent ~pos node)
                ~delete:(fun n -> S.delete t n)
                op
            in
            total := !total + c;
            if c > !worst then worst := c)
          script;
        Printf.printf "%-12s %16d %10d\n" S.name !total !worst)
      [
        (module Ruid.Scheme_uid); (module Ruid.Scheme_ruid2);
        (module Ruid.Scheme_multilevel); (module Baselines.Prepost);
        (module Baselines.Interval); (module Baselines.Dewey);
      ]
  in
  Cmd.v
    (Cmd.info "update-sim"
       ~doc:"Replay a random edit script against every numbering scheme.")
    Term.(const run $ input_arg $ ops $ seed_arg)

(* ------------------------------------------------------------------ *)
(* reconstruct                                                         *)
(* ------------------------------------------------------------------ *)

let reconstruct_cmd =
  let expr =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"XPATH" ~doc:"Selects the fragment's elements.")
  in
  let run path area expr =
    let doc = Rxml.Parser.parse_file path in
    let r2 = R2.number ~max_area_size:area doc in
    let eng = Rxpath.Engine_ruid.create r2 in
    let hits = Rxpath.Eval.query eng expr in
    Printf.printf "<!-- %d element(s) matched; fragment below -->\n"
      (List.length hits);
    let fragment = Ruid.Reconstruct.fragment_nodes r2 hits in
    print_endline (Rxml.Serializer.to_string ~indent:2 fragment)
  in
  Cmd.v
    (Cmd.info "reconstruct"
       ~doc:
         "Reconstruct the document fragment spanned by a query's results \
          (Section 3.3).")
    Term.(const run $ input_arg $ area_arg $ expr)

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

let plan_cmd =
  let expr =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"XPATH" ~doc:"A child/descendant name-test path.")
  in
  let run path area expr =
    let doc = Rxml.Parser.parse_file path in
    let r2 = R2.number ~max_area_size:area doc in
    match Rxpath.Pathplan.compile (Rxpath.Xparser.parse expr) with
    | None ->
      prerr_endline "not plannable (predicates, wildcards or other axes)";
      exit 1
    | Some plan ->
      Format.printf "plan: %a@." Rxpath.Pathplan.pp_plan plan;
      let index = Rxpath.Tag_index.create r2 in
      List.iter
        (fun (_, tag) ->
          Printf.printf "  scan %-16s %6d candidates\n" tag
            (Rxpath.Tag_index.cardinality index tag))
        plan.Rxpath.Pathplan.steps;
      let results = Rxpath.Pathplan.run r2 index plan in
      Printf.printf "%d result(s)\n" (List.length results)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show and run the structural-join plan of a simple path.")
    Term.(const run $ input_arg $ area_arg $ expr)

(* ------------------------------------------------------------------ *)
(* save / load                                                         *)
(* ------------------------------------------------------------------ *)

let sidecar_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "sidecar" ] ~docv:"FILE" ~doc:"Binary numbering sidecar path.")

let save_cmd =
  let out =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output XML path.")
  in
  let run path area out sidecar =
    let doc = Rxml.Parser.parse_file ~keep_whitespace:true path in
    let r2 = R2.number ~max_area_size:area doc in
    Ruid.Persist.save r2 ~xml:out ~sidecar;
    Printf.printf "saved %d identifiers (%d areas, kappa %d) to %s + %s\n"
      (List.length (R2.all_nodes r2))
      (R2.area_count r2) (R2.kappa r2) out sidecar
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Number a document and persist XML + numbering sidecar.")
    Term.(const run $ input_arg $ area_arg $ out $ sidecar_arg)

let load_cmd =
  let run path sidecar =
    let _doc, r2 = Ruid.Persist.load ~xml:path ~sidecar () in
    R2.check_consistency r2;
    Printf.printf
      "restored %d identifiers (%d areas, kappa %d); consistency verified\n"
      (List.length (R2.all_nodes r2))
      (R2.area_count r2) (R2.kappa r2);
    Format.printf "K table:@.%a@." Ruid.Ktable.pp (R2.ktable r2)
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Restore a persisted numbering and verify it.")
    Term.(const run $ input_arg $ sidecar_arg)

(* ------------------------------------------------------------------ *)
(* wal-record / wal-replay / fsck / crash-test                         *)
(* ------------------------------------------------------------------ *)

module Wal = Rstorage.Wal

let wal_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "wal" ] ~docv:"FILE" ~doc:"Append-only update journal path.")

let wal_record_cmd =
  let insert =
    Arg.(
      value
      & opt (some (t3 ~sep:',' int int string)) None
      & info [ "insert" ] ~docv:"PARENT,POS,TAG"
          ~doc:
            "Insert a fresh $(b,<TAG>) element as the POS-th child of the \
             node at preorder rank PARENT.")
  in
  let delete =
    Arg.(
      value
      & opt (some int) None
      & info [ "delete" ] ~docv:"RANK"
          ~doc:"Delete the subtree rooted at preorder rank RANK.")
  in
  let run path sidecar wal insert delete =
    let op =
      match (insert, delete) with
      | Some (parent_rank, pos, tag), None -> Wal.Insert { parent_rank; pos; tag }
      | None, Some rank -> Wal.Delete { rank }
      | _ ->
        prerr_endline "exactly one of --insert or --delete is required";
        exit 2
    in
    (* Bring the numbering up to date with the journal, then commit the new
       operation through it. *)
    let recovery = Wal.replay ~xml:path ~sidecar ~wal () in
    let w = Wal.open_append wal in
    let r = Wal.log_update w recovery.Wal.r2 op in
    Format.printf "logged %a@." Wal.pp_record r
  in
  Cmd.v
    (Cmd.info "wal-record"
       ~doc:"Apply one structural update and journal it durably.")
    Term.(const run $ input_arg $ sidecar_arg $ wal_arg $ insert $ delete)

let wal_replay_cmd =
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:"Also truncate a torn journal tail after a successful replay.")
  in
  let run path sidecar wal repair =
    let recovery = Wal.replay ~xml:path ~sidecar ~wal () in
    let r2 = recovery.Wal.r2 in
    Printf.printf "snapshot: %d identifiers (%d areas, kappa %d)\n"
      (List.length (R2.all_nodes r2))
      (R2.area_count r2) (R2.kappa r2);
    List.iter
      (fun r -> Format.printf "  %a@." Wal.pp_record r)
      recovery.Wal.replayed;
    let j = recovery.Wal.journal in
    (match j.Wal.checkpoint with
    | Some c -> Format.printf "replay started from %a@." Wal.pp_checkpoint c
    | None -> ());
    Printf.printf
      "replayed %d record(s) (%d batch frame(s)), %d of %d journal bytes \
       valid\n"
      (List.length recovery.Wal.replayed)
      j.Wal.batches j.Wal.valid_bytes j.Wal.total_bytes;
    (match j.Wal.damage with
    | None -> print_endline "journal intact; deep invariants hold"
    | Some why ->
      Printf.printf "torn tail: %s\n" why;
      if repair then begin
        let _ = Wal.repair wal in
        Printf.printf "truncated journal to %d byte(s)\n" j.Wal.valid_bytes
      end
      else print_endline "(re-run with --repair to truncate it)")
  in
  Cmd.v
    (Cmd.info "wal-replay"
       ~doc:"Recover a numbering from snapshot + journal and verify it.")
    Term.(const run $ input_arg $ sidecar_arg $ wal_arg $ repair)

let fsck_cmd =
  let wal_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE" ~doc:"Optional update journal to verify.")
  in
  let run path sidecar wal =
    let status = Wal.fsck ~xml:path ~sidecar ?wal () in
    Format.printf "%a@." Wal.pp_status status;
    exit (Wal.exit_code status)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify a persisted numbering and its journal.  Exits 0 when \
          clean, 1 when a torn journal tail is recoverable, 2 when the \
          state is unrecoverable.")
    Term.(const run $ input_arg $ sidecar_arg $ wal_opt)

let crash_test_cmd =
  let ops =
    Arg.(value & opt int 64 & info [ "ops" ] ~docv:"N" ~doc:"Script length.")
  in
  let size =
    Arg.(
      value & opt int 200
      & info [ "size" ] ~docv:"N" ~doc:"Approximate document size in nodes.")
  in
  let runs =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"N"
          ~doc:"Consecutive seeds to test, starting at $(b,--seed).")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Group N records per commit frame (group commit); a tear can \
             then drop a whole batch atomically.  Default 1 (unbatched).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint" ] ~docv:"N"
          ~doc:
            "Rotate the journal to a checkpoint segment after N \
             operations; recovery then replays from the checkpoint, and \
             the simulated tear never reaches below the rotated segment \
             (rotation publishes with fsync + rename).")
  in
  let docs =
    Arg.(
      value & opt int 1
      & info [ "docs" ] ~docv:"N"
          ~doc:
            "Simulate N documents (>= 2) with interleaved journals and tear \
             exactly one: recovery must confine the damage to that document \
             while every other one replays every operation byte-identical \
             and fscks clean.  Default 1 (single-document experiment).")
  in
  let groups =
    Arg.(
      value & opt int 2
      & info [ "groups" ] ~docv:"N"
          ~doc:
            "Commit-group labels for the multi-document experiment (the \
             server's FNV-1a placement hash mod N); reported per run.  Only \
             meaningful with $(b,--docs) > 1.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Working directory (default: a fresh directory under TMPDIR).")
  in
  let run seed area ops size runs batch checkpoint docs groups dir =
    let dir =
      match dir with
      | Some d ->
        if not (Sys.file_exists d) then Unix.mkdir d 0o755;
        d
      | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ruid-crash-%d" (Unix.getpid ()))
        in
        if not (Sys.file_exists d) then Unix.mkdir d 0o755;
        d
    in
    let failures = ref 0 in
    for s = seed to seed + runs - 1 do
      if docs > 1 then begin
        match
          Rstorage.Crashsim.run_group ~dir ~seed:s ~docs ~groups ~ops ~size
            ~area ()
        with
        | o ->
          Format.printf "seed %d: ok — %a@." s
            Rstorage.Crashsim.pp_group_outcome o
        | exception Rstorage.Crashsim.Mismatch why ->
          incr failures;
          Printf.eprintf "seed %d: FAILED — %s\n%!" s why
      end
      else
        match
          Rstorage.Crashsim.run ~dir ~seed:s ~ops ~size ~area ~batch
            ?checkpoint_after:checkpoint ()
        with
        | o ->
          Format.printf "seed %d: ok — %a@." s Rstorage.Crashsim.pp_outcome o
        | exception Rstorage.Crashsim.Mismatch why ->
          incr failures;
          Printf.eprintf "seed %d: FAILED — %s\n%!" s why
    done;
    if !failures > 0 then begin
      Printf.eprintf "%d of %d run(s) failed\n" !failures runs;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "crash-test"
       ~doc:
         "Journal a random update script, tear the journal at an arbitrary \
          byte, recover, and verify the recovered numbering byte-for-byte \
          against an in-memory replica (untouched areas must be identical \
          to the snapshot).")
    Term.(
      const run $ seed_arg $ area_arg $ ops $ size $ runs $ batch $ checkpoint
      $ docs $ groups $ dir)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

module Service = Rserver.Service

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

let serve_cmd =
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "XML documents to host (served under their base name).  With no \
             files, one synthetic document per $(b,--gen-kind) is generated.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for persisted snapshots and WALs (default: a fresh \
             directory under TMPDIR).")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Worker pool size (>= 1).")
  in
  let max_queue =
    Arg.(
      value & opt int 0
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission queue bound (>= 1); requests beyond it are rejected \
             with BUSY instead of queuing without limit.  0 (the default) \
             auto-sizes the bound to 4 x max($(b,--workers), \
             $(b,--domains)) — four jobs of headroom per pool slot.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run QUERY/COUNT/CHECK on N parallel OCaml domains (multicore \
             read path) instead of the systhread worker pool.  0 (the \
             default) keeps reads on the systhread pool.")
  in
  let cache_mb =
    Arg.(
      value & opt int 0
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Cache read results in a snapshot-versioned LRU of about MB \
             mebibytes.  Entries are keyed by snapshot version, so cached \
             answers are never stale.  0 (the default) disables caching.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline: work still queued after MS milliseconds \
             is answered BUSY rather than late.  0 disables.")
  in
  let commit_interval_us =
    Arg.(
      value & opt int 0
      & info [ "commit-interval-us" ] ~docv:"US"
          ~doc:
            "Extra microseconds (>= 0) a commit leader waits for more \
             UPDATEs before flushing a non-full batch.  0 (the default) \
             batches only what arrives naturally during the in-flight \
             fsync, so a lone writer never waits.")
  in
  let commit_batch =
    Arg.(
      value & opt int 64
      & info [ "commit-batch" ] ~docv:"N"
          ~doc:
            "Most UPDATE records coalesced into one WAL batch frame and \
             one snapshot publication (>= 1).  1 gives every record its \
             own fsync (unbatched).")
  in
  let commit_groups =
    Arg.(
      value & opt int 0
      & info [ "commit-groups" ] ~docv:"N"
          ~doc:
            "Independent commit pipelines (>= 1).  Documents hash to a \
             pipeline by name; each pipeline has its own write mutex, \
             commit queue, WAL family and fsync cadence, so unrelated \
             documents commit concurrently.  0 (the default) provisions \
             one pipeline per read domain (minimum 1).")
  in
  let wal_segment_bytes =
    Arg.(
      value & opt int 0
      & info [ "wal-segment-bytes" ] ~docv:"BYTES"
          ~doc:
            "Rotate a document's WAL once its segment reaches BYTES: cut \
             a checkpoint of the durable state and restart the journal \
             from it, bounding replay cost.  0 (the default) disables \
             rotation.")
  in
  let planner =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "planner" ] ~docv:"on|off"
          ~doc:
            "Route QUERY/COUNT through the cost-based query planner and \
             serve the EXPLAIN verb ($(b,on), the default).  $(b,off) \
             evaluates every query on the engine directly — identical \
             answers, no plan cache, EXPLAIN returns an error.")
  in
  let plan_cache =
    Arg.(
      value & opt int 256
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:
            "Compiled-plan cache capacity in plans (>= 0), shared by the \
             whole collection and keyed by DataGuide fingerprint + \
             canonical query text.  0 disables plan caching.")
  in
  let epoch =
    Arg.(
      value & opt int 1
      & info [ "epoch" ] ~docv:"N"
          ~doc:
            "Fencing epoch this primary serves under (>= 1).  Persisted to \
             DIR/EPOCH and stamped on every replication reply; replicas \
             refuse bytes from any epoch lower than the highest they have \
             seen, so a deposed primary restarted with its old epoch is \
             fenced out rather than merged.")
  in
  let max_depth =
    Arg.(
      value & opt int 10000
      & info [ "max-depth" ] ~docv:"N"
          ~doc:
            "Maximal XML element nesting accepted when parsing hosted \
             documents (>= 1); deeper input is rejected at startup.")
  in
  let max_area =
    Arg.(
      value & opt int 64
      & info [ "max-area-size" ] ~docv:"N"
          ~doc:"Maximal nodes enumerated per UID-local area (>= 2).")
  in
  let gen_kind =
    Arg.(
      value
      & opt (enum [ ("xmark", `Xmark); ("dblp", `Dblp); ("none", `None_) ])
          `Xmark
      & info [ "gen-kind" ] ~docv:"KIND"
          ~doc:
            "Synthetic document family when no FILEs are given: $(b,xmark), \
             $(b,dblp), or $(b,none) to boot an empty shard that is \
             populated at runtime (ADDDOC via $(b,ruidtool ingest), ADOPT \
             via the router's REBALANCE).")
  in
  let gen_size =
    Arg.(
      value & opt int 2000
      & info [ "gen-size" ] ~docv:"N"
          ~doc:"Approximate node count of a generated document.")
  in
  let fail msg =
    prerr_endline ("ruidtool serve: " ^ msg);
    exit 2
  in
  let run files data_dir workers max_queue domains cache_mb deadline_ms
      commit_interval_us commit_max_batch commit_groups wal_segment_bytes
      planner plan_cache epoch max_depth max_area gen_kind gen_size seed
      socket =
    if max_depth < 1 then fail "--max-depth must be >= 1";
    if gen_size < 1 then fail "--gen-size must be >= 1";
    let data_dir =
      match data_dir with
      | Some d -> d
      | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ruid-serve-%d" (Unix.getpid ()))
        in
        Printf.printf "data-dir %s\n%!" d;
        d
    in
    let cfg =
      {
        Service.socket_path = socket;
        data_dir;
        workers;
        max_queue;
        deadline_ms;
        max_area_size = max_area;
        max_depth;
        domains;
        cache_mb;
        commit_interval_us;
        commit_max_batch;
        commit_groups;
        wal_segment_bytes;
        planner;
        plan_cache;
        epoch;
      }
    in
    (match Service.validate_config cfg with
    | Ok () -> ()
    | Error msg -> fail msg);
    let docs =
      match files with
      | [] when gen_kind = `None_ -> []
      | [] ->
        let name, root =
          match gen_kind with
          | `Xmark ->
            ( "xmark",
              Rworkload.Xmark.generate ~seed
                ~scale:(float_of_int gen_size /. 2000.) )
          | `Dblp ->
            ( "dblp",
              Rworkload.Dblp.generate ~seed
                ~publications:(max 1 (gen_size / 12)) )
          | `None_ -> assert false
        in
        Printf.printf "generated %s (%d nodes)\n%!" name (Dom.size root);
        [ (name, root) ]
      | files ->
        List.map
          (fun path ->
            let name = Filename.remove_extension (Filename.basename path) in
            match Rxml.Parser.parse_file ~max_depth path with
            | doc -> (name, doc)
            | exception Rxml.Parser.Parse_error e ->
              fail
                (Format.asprintf "%s does not parse: %a" path
                   Rxml.Parser.pp_error e))
          files
    in
    let t =
      try Service.start cfg docs
      with Invalid_argument msg -> fail msg
    in
    List.iter
      (fun (name, root) ->
        Printf.printf "hosting %-12s %6d nodes\n%!" name (Dom.size root))
      docs;
    Printf.printf
      "listening on %s (workers %d, read domains %s, commit groups %d, \
       queue %d, cache %s, deadline %s, planner %s)\n%!"
      socket workers
      (if domains = 0 then "off" else string_of_int domains)
      (Service.resolved_commit_groups cfg)
      (Service.resolved_max_queue cfg)
      (if cache_mb = 0 then "off" else string_of_int cache_mb ^ "MB")
      (if deadline_ms = 0 then "none" else string_of_int deadline_ms ^ "ms")
      (if planner then Printf.sprintf "on (plan cache %d)" plan_cache
       else "off");
    let stop_and_exit _ = Service.stop t; exit 0 in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_and_exit);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_and_exit);
    Service.wait t;
    print_endline "server stopped."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host documents behind the concurrent query/update service: \
          snapshot-isolated reads, WAL-serialized writes, bounded admission \
          queue.  Stop with SIGINT or the SHUTDOWN protocol verb.")
    Term.(
      const run $ files $ data_dir $ workers $ max_queue $ domains $ cache_mb
      $ deadline_ms $ commit_interval_us $ commit_batch $ commit_groups
      $ wal_segment_bytes $ planner $ plan_cache $ epoch $ max_depth
      $ max_area $ gen_kind $ gen_size $ seed_arg $ socket_arg)

let replica_cmd =
  let primary =
    Arg.(
      required
      & opt (some string) None
      & info [ "primary" ] ~docv:"PATH"
          ~doc:
            "Unix socket of the upstream node to follow — a primary, or \
             another replica (replicas serve the replication verbs too, so \
             followers chain).")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the local mirror (default: a fresh directory \
             under TMPDIR).  Restarting over an existing mirror resumes \
             the stream from the durable byte offset instead of \
             re-bootstrapping.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Read worker pool size (>= 1).")
  in
  let max_queue =
    Arg.(
      value & opt int 0
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission queue bound (>= 1); requests beyond it are rejected \
             with BUSY.  0 (the default) auto-sizes to 4 x $(b,--workers).")
  in
  let poll_ms =
    Arg.(
      value & opt int 500
      & info [ "poll-ms" ] ~docv:"MS"
          ~doc:
            "Long-poll timeout of each REPL WAIT round against the \
             upstream (>= 1).  Smaller values tighten replication lag at \
             the cost of more round trips when idle.")
  in
  let planner =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "planner" ] ~docv:"on|off"
          ~doc:
            "Route QUERY/COUNT through the cost-based query planner and \
             serve the EXPLAIN verb ($(b,on), the default).")
  in
  let plan_cache =
    Arg.(
      value & opt int 256
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:"Compiled-plan cache capacity in plans (>= 0).")
  in
  let fail msg =
    prerr_endline ("ruidtool replica: " ^ msg);
    exit 2
  in
  let run socket primary data_dir workers max_queue poll_ms planner
      plan_cache =
    let data_dir =
      match data_dir with
      | Some d -> d
      | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ruid-replica-%d" (Unix.getpid ()))
        in
        Printf.printf "data-dir %s\n%!" d;
        d
    in
    let cfg =
      {
        Rserver.Replica.socket_path = socket;
        data_dir;
        primary;
        workers;
        max_queue;
        poll_ms;
        planner;
        plan_cache;
      }
    in
    (match Rserver.Replica.validate_config cfg with
    | Ok () -> ()
    | Error msg -> fail msg);
    let t =
      try Rserver.Replica.start cfg with
      | Rserver.Replica.Fenced { seen; got } ->
        prerr_endline
          (Printf.sprintf
             "ruidtool replica: upstream %s is fenced out: it serves epoch \
              %d but this data directory has followed epoch %d — following \
              it would merge a deposed primary's writes"
             primary got seen);
        exit 4
      | Invalid_argument msg | Failure msg -> fail msg
      | Unix.Unix_error (e, fn, arg) ->
        fail
          (Printf.sprintf "cannot reach upstream %s: %s (%s %s)" primary
             (Unix.error_message e) fn arg)
    in
    let s = Rserver.Replica.snapshot t in
    Printf.printf
      "following %s at epoch %d, serving on %s (v=%d, workers %d, queue \
       %d)\n%!"
      primary
      (Rserver.Replica.epoch t)
      socket s.Rserver.Snapshot.version workers
      (Rserver.Replica.resolved_max_queue cfg);
    let stop_and_exit _ = Rserver.Replica.stop t; exit 0 in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_and_exit);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_and_exit);
    Rserver.Replica.wait t;
    print_endline "replica stopped."
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:
         "Follow a running server as a read replica: mirror its WAL stream \
          byte for byte, serve snapshot-isolated (possibly stale) reads, \
          and accept PROMOTE to fail over.  Exit status 4 means the \
          upstream is behind this mirror's fencing epoch.")
    Term.(
      const run $ socket_arg $ primary $ data_dir $ workers $ max_queue
      $ poll_ms $ planner $ plan_cache)

let client_cmd =
  let words =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORD"
          ~doc:
            "Request words, e.g. $(b,QUERY //item) or $(b,UPDATE lib INSERT \
             0 0 note).  With no words, requests are read line by line from \
             stdin (a scriptable session).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a one-shot request up to N times on a BUSY reply or a \
             transient connect failure, with exponential backoff and \
             jitter.  0 (the default) keeps the client strictly one-shot.")
  in
  let retry_budget_ms =
    Arg.(
      value
      & opt int Rserver.Client.default_retry_budget_ms
      & info [ "retry-budget-ms" ] ~docv:"MS"
          ~doc:"Total backoff sleeping allowed across all retries.")
  in
  let run socket retries budget_ms words =
    (* A router's scatter reply can be OK yet degraded — some shard was
       down and its contribution is missing, flagged by a partial= token.
       Scripts must be able to tell: distinct exit status. *)
    let is_partial body = Rserver.Client.kv body "partial" <> None in
    let print_reply resp =
      print_endline (Rserver.Protocol.response_to_string resp);
      match resp with
      | Rserver.Protocol.Ok_ body -> if is_partial body then exit 5
      | Rserver.Protocol.Busy _ -> exit 3
      | Rserver.Protocol.Err _ -> exit 1
    in
    match words with
    | [] ->
      Rserver.Client.with_connection socket @@ fun c ->
      let rec loop failed partial =
        match input_line stdin with
        | exception End_of_file ->
          if failed then exit 1 else if partial then exit 5
        | "" -> loop failed partial
        | line ->
          let resp = Rserver.Client.request_raw c line in
          print_endline (Rserver.Protocol.response_to_string resp);
          loop
            (failed || match resp with Rserver.Protocol.Err _ -> true | _ -> false)
            (partial
            || match resp with
               | Rserver.Protocol.Ok_ body -> is_partial body
               | _ -> false)
      in
      loop false false
    | words ->
      let c =
        Rserver.Client.connect_retry ~retries ~budget_ms:budget_ms socket
      in
      Fun.protect ~finally:(fun () -> Rserver.Client.close c) @@ fun () ->
      print_reply
        (Rserver.Client.request_raw_retry ~retries ~budget_ms:budget_ms c
           (String.concat " " words))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running server.  Exit status: 0 on OK, 1 on \
          ERR, 3 on BUSY, 5 on an OK reply flagged $(b,partial=) (a \
          degraded router scatter: some shard did not contribute).")
    Term.(const run $ socket_arg $ retries $ retry_budget_ms $ words)

(* ------------------------------------------------------------------ *)
(* router / ingest                                                     *)
(* ------------------------------------------------------------------ *)

module Router = Rserver.Router
module Shard_map = Rserver.Shard_map

let shard_sockets_arg =
  Arg.(
    value & opt_all string []
    & info [ "shard" ] ~docv:"PATH"
        ~doc:
          "Unix socket of one shard service; repeat in shard order.  The \
           order is the placement contract — every router and ingest run \
           over the same collection must list the shards identically.")

let router_cmd =
  let fanout =
    Arg.(
      value & opt int 0
      & info [ "fanout" ] ~docv:"N"
        ~doc:
          "Concurrent shard calls per scatter-gather query (>= 0).  0 \
           (the default) fans out to every shard at once.")
  in
  let shard_deadline_ms =
    Arg.(
      value & opt int 2000
      & info [ "shard-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-shard call deadline.  A shard that misses it is marked \
           down and its answer excluded (the scatter reply is flagged \
           $(b,partial=)); the connection is rebuilt with backoff on the \
           next request.  0 waits forever.")
  in
  let connect_retries =
    Arg.(
      value & opt int 3
      & info [ "connect-retries" ] ~docv:"N"
        ~doc:"Reconnect attempts (with backoff) to a shard thought alive.")
  in
  let fail msg =
    prerr_endline ("ruidtool router: " ^ msg);
    exit 2
  in
  let run socket shards fanout shard_deadline_ms connect_retries =
    let cfg =
      {
        Router.socket_path = socket;
        shard_sockets = Array.of_list shards;
        fanout;
        shard_deadline_ms;
        connect_retries;
      }
    in
    (match Router.validate_config cfg with
    | Ok () -> ()
    | Error msg -> fail msg);
    let t = try Router.start cfg with Invalid_argument msg -> fail msg in
    Printf.printf
      "routing %d shard(s) on %s (fanout %s, shard deadline %s)\n%!"
      (List.length shards) socket
      (if fanout = 0 then "all" else string_of_int fanout)
      (if shard_deadline_ms = 0 then "none"
       else string_of_int shard_deadline_ms ^ "ms");
    List.iteri (fun i s -> Printf.printf "  shard %d: %s\n%!" i s) shards;
    let stop_and_exit _ = Router.stop t; exit 0 in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_and_exit);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_and_exit);
    Router.wait t;
    print_endline "router stopped."
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Front a set of shard services with one socket: single-document \
          verbs forward to the owning shard, collection-wide queries \
          scatter-gather with bounded fan-out and per-shard deadlines, \
          REBALANCE moves a document between shards online.  A dead shard \
          degrades its answers to $(b,partial=) instead of failing them.")
    Term.(
      const run $ socket_arg $ shard_sockets_arg $ fanout $ shard_deadline_ms
      $ connect_retries)

let ingest_cmd =
  let dir =
    Arg.(
      required & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Directory of $(b,*.xml) files; each is hosted under its \
                base name.")
  in
  let router =
    Arg.(
      value & opt (some string) None
      & info [ "router" ] ~docv:"PATH"
          ~doc:
            "Ship every document through the router at PATH instead of \
             directly to the shards.")
  in
  let parallel =
    Arg.(
      value & opt int 4
      & info [ "parallel"; "jobs" ] ~docv:"N"
          ~doc:
            "Concurrent worker connections (>= 1): N connections to the \
             router with $(b,--router), N connections $(i,per shard) in \
             direct mode (each shard's files dealt round-robin over its \
             workers).")
  in
  let fail msg =
    prerr_endline ("ruidtool ingest: " ^ msg);
    exit 2
  in
  let run dir shards router parallel =
    if parallel < 1 then fail "--parallel must be >= 1";
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort String.compare
    in
    if files = [] then fail (Printf.sprintf "no *.xml files under %s" dir);
    (* Work buckets, one per worker connection: in direct mode each shard
       gets exactly the files the placement hash assigns it (the same FNV
       the router computes, so a later query routes straight to the copy),
       spread round-robin over its [parallel] workers; in router mode
       files are dealt round-robin over the connections and the router
       places them. *)
    let buckets, connect =
      match (shards, router) with
      | [], Some r ->
        let buckets = Array.make parallel [] in
        List.iteri
          (fun i f -> buckets.(i mod parallel) <- f :: buckets.(i mod parallel))
          files;
        (buckets, fun _ -> r)
      | (_ :: _ as shards), None ->
        let sockets = Array.of_list shards in
        let n = Array.length sockets in
        let buckets = Array.make (n * parallel) [] in
        let rr = Array.make n 0 in
        List.iter
          (fun f ->
            let name = Filename.remove_extension f in
            let s = Shard_map.hash ~shards:n name in
            let slot = (s * parallel) + (rr.(s) mod parallel) in
            rr.(s) <- rr.(s) + 1;
            buckets.(slot) <- f :: buckets.(slot))
          files;
        (buckets, fun i -> sockets.(i / parallel))
      | [], None -> fail "one of --shard ... or --router is required"
      | _ :: _, Some _ -> fail "--shard and --router are mutually exclusive"
    in
    let mu = Mutex.create () in
    let docs = ref 0 and bytes = ref 0 and nodes = ref 0 in
    let failures = ref [] in
    let record f err =
      Mutex.lock mu;
      (match err with
      | None -> ()
      | Some msg -> failures := (f, msg) :: !failures);
      Mutex.unlock mu
    in
    let t0 = Unix.gettimeofday () in
    let worker i =
      match buckets.(i) with
      | [] -> ()
      | bucket ->
        let c = Rserver.Client.connect_retry ~retries:3 (connect i) in
        Fun.protect ~finally:(fun () -> Rserver.Client.close c) @@ fun () ->
        List.iter
          (fun f ->
            let name = Filename.remove_extension f in
            let path = Filename.concat dir f in
            (* One chunk in memory per worker, never the document (let
               alone the corpus): the file ships straight from disk — a
               single ADDDOC frame when it fits, an ADDCHUNK sequence
               otherwise — and the shard parses it exactly once, in the
               same streaming pass that numbers it.  Malformed input
               comes back as the shard's ERR. *)
            let size =
              try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
            in
            match Rserver.Client.add_doc_file ~retries:3 c ~doc:name path with
            | Rserver.Protocol.Ok_ body ->
              Mutex.lock mu;
              incr docs;
              bytes := !bytes + size;
              (match Rserver.Client.kv_int body "nodes" with
              | Some n -> nodes := !nodes + n
              | None -> ());
              Mutex.unlock mu
            | Rserver.Protocol.Err msg -> record f (Some msg)
            | Rserver.Protocol.Busy why -> record f (Some ("busy: " ^ why))
            | exception Sys_error msg -> record f (Some msg))
          (List.rev bucket)
    in
    let threads =
      Array.to_list (Array.mapi (fun i _ -> Thread.create worker i) buckets)
    in
    List.iter Thread.join threads;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf
      "ingested %d/%d document(s), %d nodes, %.1f MB in %.2fs — %.0f \
       docs/s, %.1f MB/s\n"
      !docs (List.length files) !nodes
      (float_of_int !bytes /. 1048576.)
      dt
      (float_of_int !docs /. dt)
      (float_of_int !bytes /. 1048576. /. dt);
    match !failures with
    | [] -> ()
    | fs ->
      List.iter
        (fun (f, msg) -> Printf.eprintf "  %s: %s\n" f msg)
        (List.rev fs);
      Printf.eprintf "%d document(s) failed\n" (List.length fs);
      exit 1
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Bulk-load a directory of XML files into a sharded collection: \
          each document is placed by the shared FNV hash (or by the router \
          with $(b,--router)) and streamed from disk — one ADDDOC frame \
          when it fits, a chunked ADDCHUNK sequence otherwise.  The shard \
          parses each document exactly once, in the same pass that numbers \
          it; client memory is bounded by one frame per worker, not by \
          document or corpus size.")
    Term.(const run $ dir $ shard_sockets_arg $ router $ parallel)

(* ------------------------------------------------------------------ *)
(* guide                                                               *)
(* ------------------------------------------------------------------ *)

let guide_cmd =
  let run path =
    let root = load path in
    let g = Rsummary.Dataguide.build root in
    Printf.printf "%d document elements, %d distinct label paths\n"
      (Rsummary.Dataguide.document_nodes g)
      (Rsummary.Dataguide.guide_nodes g);
    Format.printf "%a@." Rsummary.Dataguide.pp g
  in
  Cmd.v
    (Cmd.info "guide" ~doc:"Print the document's DataGuide (label-path summary).")
    Term.(const run $ input_arg)

let () =
  let doc = "structural numbering schemes for XML (EDBT 2002 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ruidtool" ~doc)
          [ generate_cmd; stats_cmd; number_cmd; parent_cmd; query_cmd;
            explain_cmd; update_sim_cmd; reconstruct_cmd; plan_cmd;
            save_cmd; load_cmd;
            wal_record_cmd; wal_replay_cmd; fsck_cmd; crash_test_cmd;
            guide_cmd; serve_cmd; replica_cmd; client_cmd; router_cmd;
            ingest_cmd ]))
