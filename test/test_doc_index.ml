(* Document-order index: ranks, extents, range-based name tests, the
   extent-merge join, and the strategy-forced engines — all checked against
   the DOM oracle / naive engine on randomized trees, including behaviour
   after structural updates (stale index hard errors, re-index agrees). *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module DI = Rxpath.Doc_index
module ER = Rxpath.Engine_ruid
module J = Rjoin.Structural_join
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let setup seed n =
  let root =
    Shape.generate ~seed ~tags:[| "a"; "b"; "c"; "d" |] ~target:n
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:10 root in
  (root, r2, DI.build r2)

let test_ranks_and_extents () =
  let root, _, idx = setup 3 300 in
  let pre = Dom.preorder root in
  Alcotest.(check int) "size" (List.length pre) (DI.size idx);
  List.iteri
    (fun i n ->
      Alcotest.(check int) "rank = preorder position" i (DI.rank idx n);
      Alcotest.(check bool) "node_at inverts rank" true
        (Dom.equal n (DI.node_at idx i));
      let r, e = DI.extent idx n in
      Alcotest.(check int) "extent covers the subtree" (Dom.size n) (e - r + 1))
    pre;
  (* Two-comparison relationship tests agree with the DOM oracle. *)
  let nodes = Array.of_list pre in
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    let a = Rng.pick rng nodes and b = Rng.pick rng nodes in
    let ra, ea = DI.extent idx a and rb, _ = DI.extent idx b in
    Alcotest.(check bool) "descendant test" (Dom.is_ancestor ~anc:a ~desc:b)
      (ra < rb && rb <= ea)
  done

let test_range_name_tests () =
  List.iter
    (fun seed ->
      let root, _, idx = setup seed 250 in
      let rng = Rng.create (seed * 17) in
      let nodes = Array.of_list (Dom.preorder root) in
      for _ = 1 to 40 do
        let n = Rng.pick rng nodes in
        let tag = [| "a"; "b"; "c"; "d" |].(Rng.int rng 4) in
        let with_tag l = List.filter (fun x -> Dom.tag x = tag) l in
        check_node_list "descendant::tag"
          (with_tag (Dom.descendants n))
          (DI.descendants_by_tag idx n tag);
        check_node_list "following::tag"
          (with_tag (dom_following root n))
          (DI.following_by_tag idx n tag);
        check_node_list "preceding::tag"
          (List.rev (with_tag (dom_preceding root n)))
          (DI.preceding_by_tag idx n tag)
      done)
    [ 11; 12; 13 ]

let queries =
  [
    "//a"; "//a//b"; "//b/c"; "//a/descendant::c"; "//c/following::b";
    "//c/preceding::a"; "//b/ancestor::a"; "//a[b]/c"; "//d/following::d";
    "/descendant::b/preceding::c";
  ]

let check_engines_agree msg root r2 =
  let naive = Rxpath.Engine_naive.create root in
  List.iter
    (fun strategy ->
      let eng = ER.create ~strategy r2 in
      List.iter
        (fun q ->
          check_node_list
            (Printf.sprintf "%s: %s [%s]" msg q (ER.strategy_name strategy))
            (Rxpath.Eval.query naive q) (Rxpath.Eval.query eng q))
        queries)
    [ ER.Auto; ER.Range; ER.Arith; ER.Walk ]

let test_strategies_agree () =
  List.iter
    (fun seed ->
      let root, r2, _ = setup seed 200 in
      check_engines_agree "fresh" root r2)
    [ 21; 22; 23 ]

let test_extent_merge () =
  List.iter
    (fun seed ->
      let root, r2, idx = setup seed 220 in
      let by_tag tag =
        List.filter (fun n -> Dom.tag n = tag) (Dom.preorder root)
      in
      let pp = Baselines.Prepost.build root in
      List.iter
        (fun (anc_tag, desc_tag) ->
          let anc = by_tag anc_tag and desc = by_tag desc_tag in
          let serials ps =
            List.map (fun p -> (p.J.anc.Dom.serial, p.J.desc.Dom.serial)) ps
          in
          let got = J.extent_merge ~extent:(DI.extent idx) ~anc ~desc in
          (* Same multiset as the other three algorithms... *)
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "extent_merge = nested %s//%s" anc_tag desc_tag)
            (List.sort Stdlib.compare (serials (J.nested_loop r2 ~anc ~desc)))
            (List.sort Stdlib.compare (serials got));
          (* ...and the same normalized order as stack_tree and the probe. *)
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "extent_merge order %s//%s" anc_tag desc_tag)
            (serials (J.stack_tree pp ~anc ~desc))
            (serials got);
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "probe order %s//%s" anc_tag desc_tag)
            (serials (J.ancestor_probe r2 ~anc ~desc))
            (serials got))
        [ ("a", "b"); ("b", "c"); ("a", "a"); ("d", "b") ])
    [ 31; 32 ]

let test_stale_index_hard_error () =
  let root, r2, idx = setup 41 120 in
  let fresh = Dom.element "zz" in
  let _changed = R2.insert_node r2 ~parent:root ~pos:0 fresh in
  Alcotest.check_raises "stale rank raises"
    (Invalid_argument "Doc_index: node outside the indexed snapshot")
    (fun () -> ignore (DI.rank idx fresh));
  (* A node from an unrelated document is equally foreign. *)
  let other = Shape.generate ~seed:1 ~target:20
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 2 }) in
  Alcotest.(check (option int)) "foreign node has no rank" None
    (DI.rank_opt idx other);
  Alcotest.(check bool) "mem is false for foreign nodes" false
    (DI.mem idx other)

let test_reindex_after_update () =
  let root, r2, _ = setup 51 150 in
  let rng = Rng.create 52 in
  (* A few inserts and a delete, then a fresh index over the same r2. *)
  for i = 1 to 5 do
    let parent = Shape.random_internal rng root in
    ignore (R2.insert_node r2 ~parent ~pos:0 (Dom.element (Printf.sprintf "n%d" i)))
  done;
  (match root.Dom.children with
  | victim :: _ -> ignore (R2.delete_subtree r2 victim)
  | [] -> ());
  R2.check_consistency r2;
  let idx = DI.build r2 in
  let pre = Dom.preorder root in
  Alcotest.(check int) "re-index covers the updated tree" (List.length pre)
    (DI.size idx);
  List.iteri
    (fun i n -> Alcotest.(check int) "re-ranked" i (DI.rank idx n))
    pre;
  (* Engines rebuilt after the update agree with naive on the new tree. *)
  check_engines_agree "post-update" root r2

let test_postings_cached () =
  let root, r2, idx = setup 61 200 in
  let expected tag =
    List.length (List.filter (fun n -> Dom.tag n = tag) (Dom.preorder root))
  in
  List.iter
    (fun tag ->
      Alcotest.(check int) ("cardinality " ^ tag) (expected tag)
        (DI.cardinality idx tag);
      let ti = Rxpath.Tag_index.create r2 in
      Alcotest.(check int) ("tag_index cardinality " ^ tag) (expected tag)
        (Rxpath.Tag_index.cardinality ti tag);
      check_node_list ("tag_index list/array agree " ^ tag)
        (Rxpath.Tag_index.find ti tag)
        (Array.to_list (Rxpath.Tag_index.find_array ti tag)))
    [ "a"; "b"; "c"; "d"; "nosuch" ]

let prop_engine_agree_random =
  Util.qtest ~count:25 "strategy engines agree on random trees"
    QCheck.(int_range 20 300)
    (fun n ->
      let root, r2, _ = setup (n * 7) n in
      let naive = Rxpath.Engine_naive.create root in
      List.for_all
        (fun strategy ->
          let eng = ER.create ~strategy r2 in
          List.for_all
            (fun q ->
              serials (Rxpath.Eval.query naive q)
              = serials (Rxpath.Eval.query eng q))
            queries)
        [ ER.Auto; ER.Range; ER.Arith; ER.Walk ])

let prop_extent_merge_random =
  Util.qtest ~count:25 "extent_merge matches the DOM oracle"
    QCheck.(int_range 10 250)
    (fun n ->
      let root, r2, idx = setup (n * 13) n in
      let rng = Rng.create n in
      let sample frac =
        List.filter (fun _ -> Rng.float rng < frac) (Dom.preorder root)
      in
      let anc = sample 0.3 and desc = sample 0.4 in
      let oracle =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun d ->
                if Dom.is_ancestor ~anc:a ~desc:d then
                  Some (a.Dom.serial, d.Dom.serial)
                else None)
              desc)
          anc
        |> List.sort Stdlib.compare
      in
      let got =
        J.extent_merge ~extent:(DI.extent idx) ~anc ~desc
        |> List.map (fun p -> (p.J.anc.Dom.serial, p.J.desc.Dom.serial))
        |> List.sort Stdlib.compare
      in
      got = oracle
      && got
         = (J.ancestor_probe r2 ~anc ~desc
           |> List.map (fun p -> (p.J.anc.Dom.serial, p.J.desc.Dom.serial))
           |> List.sort Stdlib.compare))

let suite =
  [
    Alcotest.test_case "ranks and extents" `Quick test_ranks_and_extents;
    Alcotest.test_case "range name tests" `Quick test_range_name_tests;
    Alcotest.test_case "strategy engines agree" `Quick test_strategies_agree;
    Alcotest.test_case "extent merge join" `Quick test_extent_merge;
    Alcotest.test_case "stale index hard error" `Quick test_stale_index_hard_error;
    Alcotest.test_case "re-index after update" `Quick test_reindex_after_update;
    Alcotest.test_case "postings cached" `Quick test_postings_cached;
    prop_engine_agree_random;
    prop_extent_merge_random;
  ]
