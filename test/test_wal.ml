(* Crash-safe journaling: the WAL's framing, torn-tail handling, fault
   tolerance, and the headline property — recovery after a crash at an
   arbitrary byte reproduces the numbering exactly, with untouched areas
   byte-identical to the snapshot. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Vfs = Ruid.Vfs
module P = Ruid.Persist
module Wal = Rstorage.Wal
module Fault = Rstorage.Fault
module Crashsim = Rstorage.Crashsim
module Shape = Rworkload.Shape
module Updates = Rworkload.Updates

let dir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-test-wal-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let path name = Filename.concat dir name

(* A numbered snapshot on disk plus its live in-memory instance. *)
let snapshot ?(seed = 11) ?(n = 150) ?(area = 8) stem =
  let root =
    Shape.generate ~seed ~target:n
      (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:area root in
  let xml = path (stem ^ ".xml")
  and sidecar = path (stem ^ ".ruid")
  and wal = path (stem ^ ".wal") in
  P.save r2 ~xml ~sidecar;
  if Sys.file_exists wal then Sys.remove wal;
  (root, r2, xml, sidecar, wal)

let script root ~seed ~ops =
  List.map Crashsim.wal_op_of_update (Updates.script ~seed ~ops root)

let test_log_and_scan () =
  let root, live, _xml, _sidecar, wal = snapshot "scan" in
  let w = Wal.create wal in
  let records =
    List.map (fun op -> Wal.log_update w live op) (script root ~seed:1 ~ops:10)
  in
  Alcotest.(check int) "writer seq" 10 (Wal.seq w);
  let s = Wal.scan wal in
  Alcotest.(check int) "all records scanned" 10 (List.length s.Wal.records);
  Alcotest.(check bool) "no damage" true (s.Wal.damage = None);
  Alcotest.(check int) "whole file valid" s.Wal.total_bytes s.Wal.valid_bytes;
  List.iteri
    (fun i r ->
      let logged = List.nth records i in
      Alcotest.(check int) "seq consecutive" (i + 1) r.Wal.seq;
      Alcotest.(check bool) "round-trips intact" true (r = logged))
    s.Wal.records;
  (* Reopen and continue the numbering. *)
  let w2 = Wal.open_append wal in
  Alcotest.(check int) "reopen resumes seq" 10 (Wal.seq w2);
  ignore (Wal.log_update w2 live (Wal.Insert { parent_rank = 0; pos = 0; tag = "more" }));
  Alcotest.(check int) "appended" 11 (List.length (Wal.scan wal).Wal.records)

(* The headline property, across seeds and cut points: Crashsim raises
   Mismatch when recovery and the in-memory replica disagree. *)
let test_crash_recovery_equivalence () =
  for seed = 1 to 6 do
    let o = Crashsim.run ~dir ~seed ~ops:40 ~size:150 ~area:8 () in
    Alcotest.(check bool) "survived prefix bounded by script"
      true
      (o.Crashsim.ops_survived <= o.Crashsim.ops_total)
  done;
  (* Degenerate cuts: everything lost, nothing lost. *)
  let all_lost = Crashsim.run ~dir ~seed:7 ~ops:20 ~cut:0 () in
  Alcotest.(check int) "cut at 0 recovers the bare snapshot" 0
    all_lost.Crashsim.ops_survived;
  let none_lost = Crashsim.run ~dir ~seed:8 ~ops:20 ~cut:max_int () in
  Alcotest.(check int) "cut past the end loses nothing" 20
    none_lost.Crashsim.ops_survived

let test_torn_tail () =
  let root, live, xml, sidecar, wal = snapshot "torn" in
  let w = Wal.create wal in
  List.iter
    (fun op -> ignore (Wal.log_update w live op))
    (script root ~seed:2 ~ops:5);
  let full = Wal.scan wal in
  Fault.torn_tail wal ~keep:(full.Wal.total_bytes - 2);
  let s = Wal.scan wal in
  Alcotest.(check int) "one record torn off" 4 (List.length s.Wal.records);
  Alcotest.(check bool) "tear reported" true (s.Wal.damage <> None);
  (* Replay still recovers the valid prefix. *)
  let r = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "replayed the prefix" 4 (List.length r.Wal.replayed);
  (* fsck: recoverable, exit 1. *)
  let st = Wal.fsck ~xml ~sidecar ~wal () in
  Alcotest.(check int) "recoverable -> exit 1" 1 (Wal.exit_code st);
  (* open_append refuses the damaged journal unless asked to repair. *)
  (match Wal.open_append wal with
  | _ -> Alcotest.fail "open_append must refuse a torn journal"
  | exception Invalid_argument _ -> ());
  let w2 = Wal.open_append ~repair:true wal in
  Alcotest.(check int) "repair resumes after the valid prefix" 4 (Wal.seq w2);
  let s2 = Wal.scan wal in
  Alcotest.(check bool) "tail gone" true (s2.Wal.damage = None);
  Alcotest.(check int) "truncated to the prefix" s.Wal.valid_bytes
    s2.Wal.total_bytes;
  Alcotest.(check int) "fsck clean after repair" 0
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()))

let test_corrupt_record () =
  let root, live, xml, sidecar, wal = snapshot "flip" in
  let w = Wal.create wal in
  List.iter
    (fun op -> ignore (Wal.log_update w live op))
    (script root ~seed:3 ~ops:6);
  (* Flip one bit in the middle of the record region: the scan must stop at
     the corrupt record, keeping the prefix. *)
  let total = (Wal.scan wal).Wal.total_bytes in
  Fault.flip_bit wal ~bit:(((5 + total) / 2) * 8 + 3);
  let s = Wal.scan wal in
  Alcotest.(check bool) "corruption detected" true (s.Wal.damage <> None);
  Alcotest.(check bool) "prefix survives" true (List.length s.Wal.records < 6);
  Alcotest.(check int) "fsck: corrupt journal is recoverable" 1
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()))

let test_corrupt_snapshot () =
  let _root, _live, xml, sidecar, wal = snapshot "snapbad" in
  ignore (Wal.create wal);
  (* Any bit of the sidecar: fsck must call the state unrecoverable. *)
  Fault.flip_bit sidecar ~bit:(8 * 40);
  let st = Wal.fsck ~xml ~sidecar ~wal () in
  Alcotest.(check int) "corrupt sidecar -> exit 2" 2 (Wal.exit_code st);
  (match Wal.replay ~xml ~sidecar ~wal () with
  | _ -> Alcotest.fail "replay over a corrupt snapshot must fail"
  | exception Invalid_argument _ -> ())

let test_journal_mismatch () =
  let _root, _live, xml, sidecar, wal = snapshot "mismatch" in
  (* A syntactically valid journal whose operations do not describe this
     snapshot: rank far out of range. *)
  let w = Wal.create wal in
  Wal.append_record w
    { Wal.seq = 1; op = Wal.Delete { rank = 99_999 }; area = 0; changed = 0 };
  (match Wal.replay ~xml ~sidecar ~wal () with
  | _ -> Alcotest.fail "expected Replay_error"
  | exception Wal.Replay_error _ -> ());
  Alcotest.(check int) "mismatched journal -> exit 2" 2
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()));
  (* A journaled renumber record that disagrees with what replay does is
     equally unrecoverable. *)
  let root2, live2, xml2, sidecar2, wal2 = snapshot "mismatch2" in
  let w2 = Wal.create wal2 in
  let op = List.hd (script root2 ~seed:4 ~ops:1) in
  let r = Wal.log_update w2 live2 op in
  Sys.remove wal2;
  let w3 = Wal.create wal2 in
  Wal.append_record w3 { r with Wal.changed = r.Wal.changed + 1 };
  match Wal.replay ~xml:xml2 ~sidecar:sidecar2 ~wal:wal2 () with
  | _ -> Alcotest.fail "expected Replay_error on renumber-record mismatch"
  | exception Wal.Replay_error _ -> ()

let test_missing_journal () =
  let _root, live, xml, sidecar, _wal = snapshot "nolog" in
  let r = Wal.replay ~xml ~sidecar ~wal:(path "does-not-exist.wal") () in
  Alcotest.(check int) "bare snapshot, nothing replayed" 0
    (List.length r.Wal.replayed);
  Alcotest.(check int) "same numbering"
    (List.length (R2.all_nodes live))
    (List.length (R2.all_nodes r.Wal.r2));
  Alcotest.(check int) "fsck without a journal" 0
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ()))

let test_crash_during_append () =
  let root, live, xml, sidecar, wal = snapshot "midappend" in
  let w = Wal.create wal in
  let ops = script root ~seed:5 ~ops:4 in
  List.iteri
    (fun i op -> if i < 3 then ignore (Wal.log_update w live op))
    ops;
  (* The fourth append dies mid-write. *)
  let p = Fault.plan ~seed:6 ~p_short_write:1.0 () in
  let wf = Wal.open_append ~vfs:(Fault.wrap p Vfs.real) wal in
  (match Wal.log_update wf live (List.nth ops 3) with
  | _ -> Alcotest.fail "expected the injected crash"
  | exception Vfs.Crash _ -> ());
  (* Recovery: the three committed operations survive; the torn fourth is
     dropped (or never reached the file at all). *)
  let r = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "committed prefix recovered" 3
    (List.length r.Wal.replayed);
  let code = Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()) in
  Alcotest.(check bool) "clean or recoverable, never unrecoverable" true
    (code = 0 || code = 1)

(* ------------------------------------------------------------------ *)
(* Group commit: batch frames                                          *)
(* ------------------------------------------------------------------ *)

let encoded_ids r2 =
  List.map
    (fun n -> Bytes.to_string (Ruid.Codec.encode_ruid2 (R2.id_of_node r2 n)))
    (R2.all_nodes r2)

(* Apply ops to [live] and build the consecutive records a commit leader
   would hand to append_batch. *)
let build_batch w live ops =
  let base = Wal.seq w in
  List.mapi
    (fun i op ->
      let area, changed = Wal.apply live op in
      { Wal.seq = base + 1 + i; op; area; changed })
    ops

let test_batch_append_scan () =
  let root, live, xml, sidecar, wal = snapshot "batch" in
  let w = Wal.create wal in
  let ops = script root ~seed:21 ~ops:9 in
  let single = List.filteri (fun i _ -> i < 3) ops
  and grouped = List.filteri (fun i _ -> i >= 3) ops in
  List.iter (fun op -> ignore (Wal.log_update w live op)) single;
  Wal.append_batch w (build_batch w live grouped);
  Alcotest.(check int) "seq advanced through the batch" 9 (Wal.seq w);
  let s = Wal.scan wal in
  Alcotest.(check int) "all records scanned" 9 (List.length s.Wal.records);
  Alcotest.(check int) "one batch frame" 1 s.Wal.batches;
  Alcotest.(check bool) "no damage" true (s.Wal.damage = None);
  let r = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "replay crosses the batch frame" 9
    (List.length r.Wal.replayed);
  (* A reopened writer resumes after the batch; a singleton batch encodes
     as a plain record frame, so the batch count stays honest. *)
  let w2 = Wal.open_append wal in
  Alcotest.(check int) "reopen resumes" 9 (Wal.seq w2);
  Wal.append_batch w2
    (build_batch w2 live [ Wal.Insert { parent_rank = 0; pos = 0; tag = "x" } ]);
  Alcotest.(check int) "singleton batch is not a batch frame" 1
    (Wal.scan wal).Wal.batches;
  (* Refused batches: empty, and sequence gaps. *)
  (match Wal.append_batch w2 [] with
  | () -> Alcotest.fail "empty batch must be refused"
  | exception Invalid_argument _ -> ());
  match
    Wal.append_batch w2
      [ { Wal.seq = Wal.seq w2 + 5; op = Wal.Delete { rank = 1 };
          area = 0; changed = 0 } ]
  with
  | () -> Alcotest.fail "non-consecutive batch must be refused"
  | exception Invalid_argument _ -> ()

let test_torn_batch_drops_atomically () =
  let root, live, xml, sidecar, wal = snapshot "tornbatch" in
  let w = Wal.create wal in
  let ops = script root ~seed:22 ~ops:8 in
  let single = List.filteri (fun i _ -> i < 4) ops
  and grouped = List.filteri (fun i _ -> i >= 4) ops in
  List.iter (fun op -> ignore (Wal.log_update w live op)) single;
  let before = (Wal.scan wal).Wal.total_bytes in
  Wal.append_batch w (build_batch w live grouped);
  let after = (Wal.scan wal).Wal.total_bytes in
  (* One checksum covers the whole batch: a tear one byte short of the end
     must drop all four records, never a prefix of the group commit. *)
  Fault.torn_tail wal ~keep:(after - 1);
  let s = Wal.scan wal in
  Alcotest.(check int) "whole batch dropped" 4 (List.length s.Wal.records);
  Alcotest.(check int) "valid prefix ends before the batch frame" before
    s.Wal.valid_bytes;
  Alcotest.(check bool) "tear reported" true (s.Wal.damage <> None);
  let r = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "recovery at the pre-batch state" 4
    (List.length r.Wal.replayed);
  ignore (Wal.repair wal);
  Alcotest.(check int) "clean after repair" 0
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()))

let test_nosync_append_and_flush () =
  let root, live, xml, sidecar, wal = snapshot "nosync" in
  let w = Wal.create wal in
  List.iteri
    (fun i op -> ignore (Wal.log_update ~sync:(i mod 2 = 0) w live op))
    (script root ~seed:23 ~ops:6);
  Wal.flush w;
  let r = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "all six present after flush" 6
    (List.length r.Wal.replayed);
  (* A record appended without sync can be lost wholesale before the
     flush: simulate the page-cache loss with a tear at the old end —
     recovery sees the shorter, still-consistent prefix. *)
  let before = (Wal.scan wal).Wal.total_bytes in
  let w2 = Wal.open_append wal in
  ignore
    (Wal.log_update ~sync:false w2 live
       (Wal.Insert { parent_rank = 0; pos = 0; tag = "lost" }));
  Fault.torn_tail wal ~keep:before;
  let r2 = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "unsynced record lost cleanly" 6
    (List.length r2.Wal.replayed)

let test_group_commit_crash_equivalence () =
  (* The batched oracle: with every frame a full batch of 8, any tear
     snaps the surviving prefix to a batch boundary. *)
  for seed = 40 to 49 do
    let o = Crashsim.run ~dir ~seed ~ops:48 ~size:150 ~area:8 ~batch:8 () in
    Alcotest.(check bool) "survived prefix bounded" true
      (o.Crashsim.ops_survived <= o.Crashsim.ops_total);
    Alcotest.(check int) "survival is batch-atomic" 0
      (o.Crashsim.ops_survived mod 8)
  done

(* ------------------------------------------------------------------ *)
(* Segment rotation + checkpointing                                    *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_rotation () =
  let root, live, xml, sidecar, wal = snapshot "ckpt" in
  let w = Wal.create wal in
  let ops = script root ~seed:24 ~ops:12 in
  let first = List.filteri (fun i _ -> i < 7) ops
  and rest = List.filteri (fun i _ -> i >= 7) ops in
  List.iter (fun op -> ignore (Wal.log_update w live op)) first;
  Alcotest.(check bool) "below threshold" false
    (Wal.should_rotate w ~threshold:1_000_000);
  Alcotest.(check bool) "threshold 0 disables" false
    (Wal.should_rotate w ~threshold:0);
  Alcotest.(check bool) "above threshold" true (Wal.should_rotate w ~threshold:1);
  let gen =
    Wal.rotate w ~xml:(P.xml_to_bytes live) ~sidecar:(P.sidecar_to_bytes live)
  in
  Alcotest.(check int) "first generation" 1 gen;
  Alcotest.(check int) "writer tracks it" 1 (Wal.generation w);
  Alcotest.(check int) "sequence survives rotation" 7 (Wal.seq w);
  let cx, cs = Wal.checkpoint_files wal 1 in
  Alcotest.(check bool) "checkpoint files published" true
    (Sys.file_exists cx && Sys.file_exists cs);
  Alcotest.(check bool) "retired segment archived" true
    (Sys.file_exists (wal ^ ".seg1"));
  List.iter (fun op -> ignore (Wal.log_update w live op)) rest;
  let s = Wal.scan wal in
  Alcotest.(check bool) "checkpoint frame survives" true
    (s.Wal.ckpt_expected && s.Wal.checkpoint <> None);
  Alcotest.(check int) "segment holds only the tail" 5
    (List.length s.Wal.records);
  (* Recovery starts from the checkpoint and must equal a full in-memory
     replay of the entire script over the base snapshot — byte for byte. *)
  let r = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "replayed the tail only" 5 (List.length r.Wal.replayed);
  let _doc, replica = P.load ~xml ~sidecar () in
  List.iter (fun op -> ignore (Wal.apply replica op)) ops;
  Alcotest.(check bool) "checkpoint recovery byte-identical to full replay"
    true
    (encoded_ids r.Wal.r2 = encoded_ids replica);
  Alcotest.(check int) "fsck clean" 0
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()));
  (* Reopen resumes sequence and generation; a second rotation retains the
     first generation's checkpoint pair — the just-cut archive (<wal>.seg2,
     a copy of the generation-1 segment) still binds replay to it, so
     retiring the pair would make the archive unreplayable at birth. *)
  let w2 = Wal.open_append wal in
  Alcotest.(check int) "resume seq" 12 (Wal.seq w2);
  Alcotest.(check int) "resume generation" 1 (Wal.generation w2);
  ignore
    (Wal.rotate w2 ~xml:(P.xml_to_bytes live)
       ~sidecar:(P.sidecar_to_bytes live));
  Alcotest.(check bool) "previous generation's checkpoints retained" true
    (Sys.file_exists cx && Sys.file_exists cs);
  Alcotest.(check int) "still clean" 0
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()));
  (* The archived generation-1 segment must recover on its own: copied to a
     scratch journal path together with the checkpoint pair its header
     references, it replays records 8..12 over checkpoint 1. *)
  let copy src dst =
    let ic = open_in_bin src in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    let oc = open_out_bin dst in
    output_string oc b;
    close_out oc
  in
  let scratch = path "ckpt-archive.wal" in
  copy (wal ^ ".seg2") scratch;
  let sx, ss = Wal.checkpoint_files scratch 1 in
  copy cx sx;
  copy cs ss;
  let ra = Wal.replay ~xml ~sidecar ~wal:scratch () in
  Alcotest.(check int) "archive replays its tail over its checkpoint" 5
    (List.length ra.Wal.replayed);
  Alcotest.(check bool) "archive replay byte-identical to the live state"
    true
    (encoded_ids ra.Wal.r2 = encoded_ids live)

let test_unsupported_version () =
  (* A v1 journal (older build) is a well-formed file this build cannot
     read: it must be diagnosed by name and left byte-for-byte untouched —
     never mistaken for a torn header and "repaired" into an empty v2
     journal, and never silently recovered around (which would drop every
     v1 record). *)
  let _root, _live, xml, sidecar, _ = snapshot "v1" in
  let wal = path "v1.wal" in
  let body = "RWAL\x01pretend-v1-records" in
  let oc = open_out_bin wal in
  output_string oc body;
  close_out oc;
  let s = Wal.scan wal in
  Alcotest.(check int) "version recognized" 1 s.Wal.version;
  Alcotest.(check bool) "flagged as unsupported, not a bad header" true
    (match s.Wal.damage with
    | Some why ->
      String.length why >= 11 && String.sub why 0 11 = "unsupported"
    | None -> false);
  ignore (Wal.repair wal);
  let ic = open_in_bin wal in
  let after = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "repair leaves the file untouched" body after;
  (match Wal.open_append wal with
  | _ -> Alcotest.fail "open_append must refuse a v1 journal"
  | exception Invalid_argument _ -> ());
  (match Wal.open_append ~repair:true wal with
  | _ -> Alcotest.fail "repair cannot adopt a v1 journal either"
  | exception Invalid_argument _ -> ());
  (match Wal.replay ~xml ~sidecar ~wal () with
  | _ -> Alcotest.fail "replay must not recover around v1 records"
  | exception Wal.Replay_error _ -> ());
  Alcotest.(check int) "fsck: unrecoverable by this build" 2
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()))

let test_checkpoint_damage () =
  let root, live, xml, sidecar, wal = snapshot "ckptbad" in
  let w = Wal.create wal in
  List.iter
    (fun op -> ignore (Wal.log_update w live op))
    (script root ~seed:25 ~ops:6);
  ignore
    (Wal.rotate w ~xml:(P.xml_to_bytes live)
       ~sidecar:(P.sidecar_to_bytes live));
  let seg_bytes = (Wal.scan wal).Wal.total_bytes in
  (* Checkpoint bytes failing the checkpoint record's checksum are
     unrecoverable — the record vouches for exact bytes. *)
  let _cx, cs = Wal.checkpoint_files wal 1 in
  Fault.flip_bit cs ~bit:(8 * 10);
  Alcotest.(check int) "corrupt checkpoint sidecar -> exit 2" 2
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()));
  Fault.flip_bit cs ~bit:(8 * 10);
  Alcotest.(check int) "bit flipped back -> clean" 0
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()));
  (* A checkpoint segment whose checkpoint frame did not survive must
     refuse recovery: falling back to the base snapshot would silently
     lose the checkpointed operations. *)
  Fault.torn_tail wal ~keep:(seg_bytes - 1);
  let s = Wal.scan wal in
  Alcotest.(check bool) "declared but missing" true
    (s.Wal.ckpt_expected && s.Wal.checkpoint = None);
  (match Wal.replay ~xml ~sidecar ~wal () with
  | _ -> Alcotest.fail "replay must refuse the silent fallback"
  | exception Wal.Replay_error _ -> ());
  Alcotest.(check int) "unrecoverable" 2
    (Wal.exit_code (Wal.fsck ~xml ~sidecar ~wal ()));
  (match Wal.open_append wal with
  | _ -> Alcotest.fail "open_append must refuse"
  | exception Invalid_argument _ -> ());
  (match Wal.open_append ~repair:true wal with
  | _ -> Alcotest.fail "repair cannot help either"
  | exception Invalid_argument _ -> ());
  let before = (Wal.scan wal).Wal.total_bytes in
  ignore (Wal.repair wal);
  Alcotest.(check int) "repair leaves the segment untouched" before
    (Wal.scan wal).Wal.total_bytes

let test_checkpoint_crash_equivalence () =
  (* The oracle through a rotation, on 10 seeds: recovery = checkpointed
     prefix + replayed tail, always equivalent to the in-memory replica,
     and the tear never reaches below the rotated segment. *)
  for seed = 60 to 69 do
    let o =
      Crashsim.run ~dir ~seed ~ops:40 ~size:150 ~area:8 ~batch:4
        ~checkpoint_after:20 ()
    in
    Alcotest.(check int) "checkpoint folded exactly 20 ops" 20
      o.Crashsim.checkpoint_ops;
    Alcotest.(check bool) "never below the checkpointed prefix" true
      (o.Crashsim.ops_survived >= 20);
    Alcotest.(check bool) "bounded by the script" true
      (o.Crashsim.ops_survived <= o.Crashsim.ops_total)
  done

let test_cross_group_crash_independence () =
  (* The commit-pipeline contract at the storage layer, on 10 seeds:
     four documents labeled over two commit groups journal interleaved
     scripts, one journal is torn, and Crashsim.run_group raises
     Mismatch unless every other document — victim's group or not —
     replays all of its operations byte-identical and fscks Clean. *)
  for seed = 80 to 89 do
    let o = Crashsim.run_group ~dir ~seed ~docs:4 ~groups:2 ~ops:24 () in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: every non-victim document intact" seed)
      3 o.Crashsim.g_intact_docs;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: victim prefix bounded" seed)
      true
      (o.Crashsim.g_victim_survived <= o.Crashsim.g_victim_total);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: victim group labeled" seed)
      true
      (o.Crashsim.g_victim_group >= 0 && o.Crashsim.g_victim_group < 2)
  done;
  (* The group labeling is the server's placement hash: stable, total. *)
  Alcotest.(check int) "one group maps everything to 0" 0
    (Crashsim.group_of ~groups:1 "anything");
  Alcotest.(check int) "labels deterministic"
    (Crashsim.group_of ~groups:4 "doc3")
    (Crashsim.group_of ~groups:4 "doc3")

let test_family_enumeration () =
  (* Wal.family discovers every on-disk artifact of a journal — active
     segment, checkpoint pairs, archived segments — in generation order,
     from the directory alone.  DROPDOC relies on this list to remove a
     document without leaking archives. *)
  let root, live, _xml, _sidecar, wal = snapshot "fam" in
  let w = Wal.create wal in
  let ops = script root ~seed:26 ~ops:9 in
  let chunk i = List.filteri (fun j _ -> j / 3 = i) ops in
  List.iter (fun op -> ignore (Wal.log_update w live op)) (chunk 0);
  ignore
    (Wal.rotate w ~xml:(P.xml_to_bytes live)
       ~sidecar:(P.sidecar_to_bytes live));
  List.iter (fun op -> ignore (Wal.log_update w live op)) (chunk 1);
  ignore
    (Wal.rotate w ~xml:(P.xml_to_bytes live)
       ~sidecar:(P.sidecar_to_bytes live));
  List.iter (fun op -> ignore (Wal.log_update w live op)) (chunk 2);
  let fam = Wal.family wal in
  let members = List.map fst fam in
  Alcotest.(check bool) "active + 2 checkpoint pairs + 2 archives" true
    (members
    = [
        Wal.Active;
        Wal.Checkpoint_xml 1; Wal.Checkpoint_sidecar 1; Wal.Segment 1;
        Wal.Checkpoint_xml 2; Wal.Checkpoint_sidecar 2; Wal.Segment 2;
      ]);
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p))
    fam;
  (* A sibling journal's family is untouched by ours. *)
  let _, _, _, _, wal2 = snapshot "famsib" in
  let w2 = Wal.create wal2 in
  ignore
    (Wal.log_update w2 live (Wal.Insert { parent_rank = 0; pos = 0; tag = "s" }));
  Alcotest.(check int) "sibling family is just its active segment" 1
    (List.length (Wal.family wal2))

let test_transient_faults_absorbed () =
  (* The whole pipeline — save, journaling, recovery — under a transient
     fault plan whose bursts stay below the retry budget. *)
  let root =
    Shape.generate ~seed:31 ~target:120
      (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:8 root in
  let xml = path "transient.xml"
  and sidecar = path "transient.ruid"
  and wal = path "transient.wal" in
  let plan = Fault.plan ~seed:32 ~p_transient:0.25 ~transient_burst:2 () in
  let vfs = Fault.wrap plan Vfs.real in
  P.save ~vfs ~attempts:5 r2 ~xml ~sidecar;
  let w = Wal.create ~vfs ~attempts:5 wal in
  List.iter
    (fun op -> ignore (Wal.log_update w r2 op))
    (script root ~seed:33 ~ops:15);
  let r = Wal.replay ~vfs ~attempts:5 ~xml ~sidecar ~wal () in
  Alcotest.(check int) "all operations survived the weather" 15
    (List.length r.Wal.replayed);
  Alcotest.(check bool) "transients actually fired" true
    (Fault.events plan <> [])

let suite =
  [
    Alcotest.test_case "log, scan, reopen" `Quick test_log_and_scan;
    Alcotest.test_case "crash-recovery equivalence (headline)" `Quick
      test_crash_recovery_equivalence;
    Alcotest.test_case "torn tail" `Quick test_torn_tail;
    Alcotest.test_case "corrupt record" `Quick test_corrupt_record;
    Alcotest.test_case "corrupt snapshot" `Quick test_corrupt_snapshot;
    Alcotest.test_case "journal/snapshot mismatch" `Quick test_journal_mismatch;
    Alcotest.test_case "missing journal" `Quick test_missing_journal;
    Alcotest.test_case "crash during append" `Quick test_crash_during_append;
    Alcotest.test_case "batch frames: append + scan" `Quick
      test_batch_append_scan;
    Alcotest.test_case "torn batch drops atomically" `Quick
      test_torn_batch_drops_atomically;
    Alcotest.test_case "nosync append + flush" `Quick
      test_nosync_append_and_flush;
    Alcotest.test_case "group-commit crash equivalence" `Quick
      test_group_commit_crash_equivalence;
    Alcotest.test_case "checkpoint rotation" `Quick test_checkpoint_rotation;
    Alcotest.test_case "unsupported journal version refused" `Quick
      test_unsupported_version;
    Alcotest.test_case "checkpoint damage refused" `Quick
      test_checkpoint_damage;
    Alcotest.test_case "checkpoint crash equivalence (10 seeds)" `Quick
      test_checkpoint_crash_equivalence;
    Alcotest.test_case "cross-group crash independence (10 seeds)" `Quick
      test_cross_group_crash_independence;
    Alcotest.test_case "family enumeration" `Quick test_family_enumeration;
    Alcotest.test_case "transient faults absorbed" `Quick
      test_transient_faults_absorbed;
  ]
