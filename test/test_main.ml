let () =
  Alcotest.run "ruid-repro"
    [
      ("bignat", Test_bignat.suite);
      ("dom", Test_dom.suite);
      ("parser", Test_parser.suite);
      ("sax", Test_sax.suite);
      ("stream_build", Test_stream_build.suite);
      ("uid", Test_uid.suite);
      ("frame", Test_frame.suite);
      ("ruid2", Test_ruid2.suite);
      ("multilevel", Test_multilevel.suite);
      ("mruid", Test_mruid.suite);
      ("schemes", Test_schemes.suite);
      ("xpath", Test_xpath.suite);
      ("doc_index", Test_doc_index.suite);
      ("storage", Test_storage.suite);
      ("fault", Test_fault.suite);
      ("wal", Test_wal.suite);
      ("workload", Test_workload.suite);
      ("join", Test_join.suite);
      ("reconstruct", Test_reconstruct.suite);
      ("codec", Test_codec.suite);
      ("persist", Test_persist.suite);
      ("partitioned", Test_partitioned.suite);
      ("pathplan", Test_pathplan.suite);
      ("collection", Test_collection.suite);
      ("dataguide", Test_dataguide.suite);
      ("twig", Test_twig.suite);
      ("misc", Test_misc.suite);
      ("fuzz", Test_fuzz.suite);
      ("conformance", Test_conformance.suite);
      ("auto", Test_auto.suite);
      ("server", Test_server.suite);
      ("parallel", Test_parallel.suite);
      ("replication", Test_replication.suite);
      ("router", Test_router.suite);
    ]
