module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module P = Rstorage.Partitioned
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let setup () =
  let root =
    Shape.generate ~seed:7 ~tags:[| "a"; "b"; "c"; "d" |] ~target:600
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:12 root in
  (root, r2, P.create r2)

let test_naming () =
  Alcotest.(check string) "two-part name" "item.27"
    (P.table_name ~tag:"item" ~global:27)

let test_coverage () =
  let root, _, p = setup () in
  Alcotest.(check int) "every element stored"
    (List.length (List.filter Dom.is_element (Dom.preorder root)))
    (P.row_count p);
  Alcotest.(check bool) "partitioned into many tables" true (P.table_count p > 10)

let test_select_by_area () =
  let root, r2, p = setup () in
  (* Each table holds exactly the tag's elements enumerated in that area. *)
  let total =
    List.fold_left
      (fun acc tag ->
        let count = ref 0 in
        List.iter
          (fun n -> if Dom.tag n = tag then incr count)
          (Dom.preorder root);
        acc + !count)
      0 [ "a"; "b"; "c"; "d" ]
  in
  ignore r2;
  Alcotest.(check int) "tables partition the elements" (P.row_count p) total

let test_descendant_query_correct () =
  let root, r2, p = setup () in
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let ctx = Shape.random_internal rng root in
    let tag = [| "a"; "b"; "c"; "d" |].(Rng.int rng 4) in
    let _opened, hits = P.descendant_query p ~context:(R2.id_of_node r2 ctx) ~tag in
    let expected =
      List.filter (fun n -> Dom.tag n = tag) (Dom.descendants ctx)
    in
    check_node_list (Printf.sprintf "descendants %s" tag) expected hits
  done

let test_descendant_query_prunes () =
  let root, r2, p = setup () in
  (* From a mid-level context, only a fraction of the tag's tables should
     be opened. *)
  let rng = Rng.create 9 in
  let ctx = ref root in
  (* Pick an internal node that is not the root and has a reasonably small
     subtree. *)
  for _ = 1 to 50 do
    let cand = Shape.random_internal rng root in
    if
      (not (Dom.equal cand root))
      && Dom.size cand * 4 < Dom.size root
      && Dom.size cand > 5
    then ctx := cand
  done;
  if not (Dom.equal !ctx root) then begin
    let opened, _ = P.descendant_query p ~context:(R2.id_of_node r2 !ctx) ~tag:"a" in
    let all = P.tables_for_tag p "a" in
    Alcotest.(check bool)
      (Printf.sprintf "opened %d of %d tables" (List.length opened) all)
      true
      (List.length opened < all)
  end

(* Property check against the numbering-driven engine: over a population
   of random document shapes, the table-selection answer (frame
   arithmetic deciding which [tag.global] tables to open) must equal the
   engine's [descendant::tag] answer from the same context.  The two
   paths share nothing but the numbering, so agreement pins both. *)
let test_descendant_query_vs_engine () =
  let tags = [| "a"; "b"; "c"; "d" |] in
  for seed = 1 to 30 do
    let shape =
      if seed mod 3 = 0 then Shape.Deep { fanout = 2; bias = 0.7 }
      else if seed mod 3 = 1 then Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }
      else Shape.Uniform { fanout_lo = 1; fanout_hi = 8 }
    in
    let target = 100 + (seed * 17 mod 400) in
    let root = Shape.generate ~seed ~tags ~target shape in
    let area = 4 + (seed mod 13) in
    let r2 = R2.number ~max_area_size:area root in
    let p = P.create r2 in
    let eng = Rxpath.Engine_ruid.create r2 in
    let rng = Rng.create (seed * 31) in
    for _ = 1 to 5 do
      let ctx = Shape.random_internal rng root in
      let tag = tags.(Rng.int rng (Array.length tags)) in
      let _opened, hits =
        P.descendant_query p ~context:(R2.id_of_node r2 ctx) ~tag
      in
      let expected = Rxpath.Eval.query eng ~context:ctx ("descendant::" ^ tag) in
      check_node_list
        (Printf.sprintf "seed %d area %d descendant::%s" seed area tag)
        expected hits
    done
  done

let suite =
  [
    Alcotest.test_case "table naming" `Quick test_naming;
    Alcotest.test_case "coverage" `Quick test_coverage;
    Alcotest.test_case "tables partition elements" `Quick test_select_by_area;
    Alcotest.test_case "descendant query correct" `Quick test_descendant_query_correct;
    Alcotest.test_case "descendant query prunes tables" `Quick test_descendant_query_prunes;
    Alcotest.test_case "descendant query vs ruid engine" `Quick
      test_descendant_query_vs_engine;
  ]
