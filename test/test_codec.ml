module C = Ruid.Codec
module R2 = Ruid.Ruid2
module M = Ruid.Mruid
module Shape = Rworkload.Shape

let test_varint_sizes () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (string_of_int n) expected (C.varint_size n))
    [ (0, 1); (127, 1); (128, 2); (16383, 2); (16384, 3); (1 lsl 60, 9) ]

let test_varint_round_trip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      C.write_varint buf n;
      let bytes = Buffer.to_bytes buf in
      Alcotest.(check int) "size matches" (C.varint_size n) (Bytes.length bytes);
      let v, pos = C.read_varint bytes ~pos:0 in
      Alcotest.(check int) "value" n v;
      Alcotest.(check int) "position" (Bytes.length bytes) pos)
    [ 0; 1; 127; 128; 300; 65535; 1_000_000; max_int ]

let test_ruid2_round_trip () =
  let root = Shape.generate ~seed:2 ~target:300 (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  let r2 = R2.number ~max_area_size:8 root in
  List.iter
    (fun n ->
      let id = R2.id_of_node r2 n in
      let enc = C.encode_ruid2 id in
      Alcotest.(check int) "declared size" (C.ruid2_size id) (Bytes.length enc);
      Alcotest.(check bool) "round trip" true
        (R2.id_equal (C.decode_ruid2 enc) id))
    (Rxml.Dom.preorder root)

let test_mruid_round_trip () =
  let root = Shape.generate ~seed:5 ~target:400 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let m = M.build ~max_area_size:6 ~top_size:8 root in
  List.iter
    (fun n ->
      let id = M.id_of_node m n in
      let enc = C.encode_mruid id in
      Alcotest.(check int) "declared size" (C.mruid_size id) (Bytes.length enc);
      Alcotest.(check bool) "round trip" true (M.id_equal (C.decode_mruid enc) id))
    (Rxml.Dom.preorder root)

let test_bignat_size () =
  let b = Bignum.Bignat.pow (Bignum.Bignat.of_int 2) 140 in
  (* 141 bits -> 21 payload bytes + 1 length byte *)
  Alcotest.(check int) "2^140" 22 (C.bignat_size b);
  Alcotest.(check int) "zero still occupies a byte" 2 (C.bignat_size Bignum.Bignat.zero)

let test_decode_garbage () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Codec.read_varint: truncated input") (fun () ->
      ignore (C.read_varint (Bytes.of_string "\xff") ~pos:0));
  Alcotest.check_raises "trailing"
    (Invalid_argument "Codec.decode_ruid2: trailing bytes") (fun () ->
      let buf = Buffer.create 8 in
      C.write_varint buf 0;
      C.write_varint buf 1;
      C.write_varint buf 1;
      C.write_varint buf 9;
      ignore (C.decode_ruid2 (Buffer.to_bytes buf)))

let prop_varint_round_trip =
  Util.qtest "varint round-trips arbitrary non-negative ints"
    QCheck.(map abs int)
    (fun n ->
      let buf = Buffer.create 10 in
      C.write_varint buf n;
      fst (C.read_varint (Buffer.to_bytes buf) ~pos:0) = n)

let prop_concatenated_varints =
  Util.qtest "varint streams decode in sequence"
    QCheck.(small_list (map abs small_int))
    (fun ns ->
      let buf = Buffer.create 32 in
      List.iter (C.write_varint buf) ns;
      let bytes = Buffer.to_bytes buf in
      let rec go pos acc =
        if pos >= Bytes.length bytes then List.rev acc
        else begin
          let v, pos = C.read_varint bytes ~pos in
          go pos (v :: acc)
        end
      in
      go 0 [] = ns)

(* Exact wire bytes at the varint boundaries, and the malformed encodings
   the reader must refuse: truncation, over-long padding, 64-bit overflow. *)
let test_varint_boundaries () =
  let enc n =
    let buf = Buffer.create 10 in
    C.write_varint buf n;
    Bytes.to_string (Buffer.to_bytes buf)
  in
  Alcotest.(check string) "0" "\x00" (enc 0);
  Alcotest.(check string) "127" "\x7f" (enc 127);
  Alcotest.(check string) "128" "\x80\x01" (enc 128);
  Alcotest.(check int) "max_int takes 9 bytes" 9 (String.length (enc max_int));
  (* shift = 56 on the 9th byte is the last legal continuation point *)
  let v, pos = C.read_varint (Bytes.of_string (enc max_int)) ~pos:0 in
  Alcotest.(check int) "max_int round trip" max_int v;
  Alcotest.(check int) "max_int consumed fully" 9 pos;
  Alcotest.check_raises "over-long: ten continuation bytes"
    (Invalid_argument "Codec.read_varint: over-long varint") (fun () ->
      ignore (C.read_varint (Bytes.of_string (String.make 10 '\x80')) ~pos:0));
  Alcotest.check_raises "overflow: 63 significant bits"
    (Invalid_argument "Codec.read_varint: varint overflows int") (fun () ->
      ignore
        (C.read_varint
           (Bytes.of_string (String.make 8 '\xff' ^ "\x7f"))
           ~pos:0));
  Alcotest.check_raises "truncated mid-sequence"
    (Invalid_argument "Codec.read_varint: truncated input") (fun () ->
      ignore (C.read_varint (Bytes.of_string "\x80\x80") ~pos:0))

(* Multi-level identifiers at their boundaries: a deep chain forces more
   than two levels, and every id must survive the wire. *)
let test_mruid_multilevel_boundaries () =
  let root = Shape.chain ~depth:120 () in
  let m = M.build ~max_area_size:4 ~top_size:4 root in
  Alcotest.(check bool) "chain forces more than two levels" true
    (M.levels m > 2);
  List.iter
    (fun n ->
      let id = M.id_of_node m n in
      let enc = C.encode_mruid id in
      Alcotest.(check int) "declared size" (C.mruid_size id) (Bytes.length enc);
      Alcotest.(check bool) "round trip" true (M.id_equal (C.decode_mruid enc) id);
      (* Any strict prefix must be rejected, never mis-decoded. *)
      let cut = Bytes.length enc - 1 in
      match C.decode_mruid (Bytes.sub enc 0 cut) with
      | id' ->
        Alcotest.(check bool) "prefix cannot decode to the same id" false
          (M.id_equal id' id)
      | exception Invalid_argument _ -> ())
    (Rxml.Dom.preorder root)

let suite =
  [
    Alcotest.test_case "varint sizes" `Quick test_varint_sizes;
    Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
    Alcotest.test_case "mruid multi-level boundaries" `Quick
      test_mruid_multilevel_boundaries;
    prop_varint_round_trip;
    prop_concatenated_varints;
    Alcotest.test_case "varint round trip" `Quick test_varint_round_trip;
    Alcotest.test_case "ruid2 round trip" `Quick test_ruid2_round_trip;
    Alcotest.test_case "mruid round trip" `Quick test_mruid_round_trip;
    Alcotest.test_case "bignat size" `Quick test_bignat_size;
    Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
  ]
