(* WAL-shipping replication: bootstrap and live-stream convergence
   (byte-identical replies), torn-stream resumption under an injected
   fault plan, restart resume, rotation catch-up from archived segments,
   fenced failover with a promoted replica serving writes to the rest of
   the chain, and fsck-cleanliness of every data directory throughout. *)

module Dom = Rxml.Dom
module P = Rserver.Protocol
module C = Rserver.Client
module Service = Rserver.Service
module Replica = Rserver.Replica
module Wal = Rstorage.Wal
module Fault = Rstorage.Fault

let unique =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ()) ("ruid-repl-" ^ unique ())
  in
  Unix.mkdir d 0o755;
  d

let sock_path () = Filename.concat "/tmp" ("ruid-r" ^ unique () ^ ".sock")

let doc_of_string s = Dom.root_element (Rxml.Parser.parse_string s)

let lib_doc () =
  doc_of_string
    "<lib><book><title>a</title><author>x</author></book><book><title>b</title></book><journal><title>c</title></journal></lib>"

let ok_body = function
  | P.Ok_ body -> body
  | P.Err m -> Alcotest.failf "unexpected ERR %s" m
  | P.Busy m -> Alcotest.failf "unexpected BUSY %s" m

let with_primary ?(wal_segment_bytes = 0) ?(epoch = 1) ?(commit_groups = 0)
    ?(workers = 2) docs f =
  let cfg =
    {
      Service.socket_path = sock_path ();
      data_dir = temp_dir ();
      workers;
      max_queue = 32;
      deadline_ms = 0;
      max_area_size = 8;
      max_depth = 10_000;
      domains = 0;
      cache_mb = 0;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups;
      wal_segment_bytes;
      planner = true;
      plan_cache = 64;
      epoch;
    }
  in
  let t = Service.start cfg docs in
  Fun.protect ~finally:(fun () -> Service.stop t) (fun () -> f cfg t)

let replica_config ?(poll_ms = 25) ~primary () =
  {
    Replica.socket_path = sock_path ();
    data_dir = temp_dir ();
    primary;
    workers = 2;
    max_queue = 32;
    poll_ms;
    planner = true;
    plan_cache = 64;
  }

let with_replica ?chaos cfg f =
  let t = Replica.start ?chaos cfg in
  Fun.protect ~finally:(fun () -> Replica.stop t) (fun () -> f t)

let wait_until ?(timeout_s = 20.) ?(what = "condition") pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let wait_version r v =
  wait_until ~what:(Printf.sprintf "replica to reach v=%d" v) (fun () ->
      (Replica.snapshot r).Rserver.Snapshot.version >= v)

(* The read probes whose replies must be byte-identical between a
   caught-up replica and its upstream.  EXPLAIN is excluded on purpose:
   its output includes measured per-execution timings. *)
let probes =
  [
    P.Query "//book"; P.Query "//title"; P.Query "//book/title";
    P.Query "//inserted"; P.Count "//book"; P.Count "//title";
    P.Count "//inserted"; P.Check "lib";
  ]

let replies sock =
  C.with_connection sock @@ fun c ->
  List.map (fun r -> P.response_to_string (C.request c r)) probes

let check_identical ~ctx a_sock b_sock =
  List.iter2
    (fun a b -> Alcotest.(check string) (ctx ^ ": reply identical") a b)
    (replies a_sock) (replies b_sock)

(* A seeded write mix against the primary: mostly inserts under low ranks
   (always valid), a few deletes of random ranks (rejected ones simply
   never reach the journal).  Returns the primary's published version. *)
let write_mix ~seed ~ops sock =
  let rng = Random.State.make [| seed |] in
  C.with_connection sock @@ fun c ->
  for i = 1 to ops do
    let op =
      if Random.State.int rng 5 = 0 then
        Wal.Delete { rank = 2 + Random.State.int rng 40 }
      else
        Wal.Insert
          {
            parent_rank = Random.State.int rng 3;
            pos = Random.State.int rng 2;
            tag = Printf.sprintf "inserted%d" i;
          }
    in
    ignore (C.request c (P.Update { doc = "lib"; op }))
  done;
  match C.request c P.Docs with
  | P.Ok_ body -> (
    match C.kv_int body "v" with
    | Some v -> v
    | None -> Alcotest.fail "DOCS reply lacks v=")
  | r -> Alcotest.failf "DOCS: %s" (P.response_to_string r)

let assert_fsck_clean ~ctx dir =
  let xml = Filename.concat dir "lib.xml" in
  let sidecar = Filename.concat dir "lib.ruid" in
  let wal = Filename.concat dir "lib.wal" in
  match Wal.fsck ~xml ~sidecar ~wal () with
  | Wal.Clean -> ()
  | st ->
    Alcotest.failf "%s: fsck of %s not clean: %a" ctx dir Wal.pp_status st

let stats_kv sock key =
  C.with_connection sock @@ fun c ->
  match C.kv_int (ok_body (C.request c P.Stats)) key with
  | Some v -> v
  | None -> Alcotest.failf "STATS lacks %s=" key

(* ------------------------------------------------------------------ *)
(* Bootstrap + live stream                                             *)
(* ------------------------------------------------------------------ *)

let test_bootstrap_and_live () =
  with_primary [ ("lib", lib_doc ()) ] @@ fun pcfg _service ->
  let v1 = write_mix ~seed:11 ~ops:6 pcfg.Service.socket_path in
  let rcfg = replica_config ~primary:pcfg.Service.socket_path () in
  with_replica rcfg @@ fun r ->
  (* bootstrap alone must already reach the primary's version *)
  wait_version r v1;
  check_identical ~ctx:"after bootstrap" pcfg.Service.socket_path
    rcfg.Replica.socket_path;
  (* live writes stream over WAIT; replica converges without reconnect *)
  let v2 = write_mix ~seed:12 ~ops:8 pcfg.Service.socket_path in
  wait_version r v2;
  check_identical ~ctx:"after live writes" pcfg.Service.socket_path
    rcfg.Replica.socket_path;
  Alcotest.(check int)
    "no reconnects on a healthy stream" 0
    (stats_kv rcfg.Replica.socket_path "repl_reconnects");
  Alcotest.(check int)
    "caught up: zero version lag" 0
    (stats_kv rcfg.Replica.socket_path "repl_lag_versions");
  Alcotest.(check int)
    "last applied sequence gauge" (v2 - 1)
    (stats_kv rcfg.Replica.socket_path "repl_last_seq");
  (* writes are refused while following *)
  (C.with_connection rcfg.Replica.socket_path @@ fun c ->
   match
     C.request c
       (P.Update
          { doc = "lib";
            op = Wal.Insert { parent_rank = 0; pos = 0; tag = "nope" } })
   with
   | P.Err m ->
     Alcotest.(check bool) "read-only error names the contract" true
       (String.length m > 0)
   | r -> Alcotest.failf "replica accepted a write: %s" (P.response_to_string r));
  assert_fsck_clean ~ctx:"replica mirror" rcfg.Replica.data_dir

(* ------------------------------------------------------------------ *)
(* Torn-stream property: resume + converge over 10 seeds               *)
(* ------------------------------------------------------------------ *)

let test_torn_stream_seeds () =
  let tears = ref 0 in
  for seed = 1 to 10 do
    with_primary [ ("lib", lib_doc ()) ] @@ fun pcfg _service ->
    ignore (write_mix ~seed:(100 + seed) ~ops:4 pcfg.Service.socket_path);
    let chaos = Fault.plan ~seed ~p_short_write:0.4 () in
    let rcfg =
      replica_config ~poll_ms:20 ~primary:pcfg.Service.socket_path ()
    in
    with_replica ~chaos rcfg @@ fun r ->
    let v = write_mix ~seed ~ops:12 pcfg.Service.socket_path in
    wait_version r v;
    check_identical
      ~ctx:(Printf.sprintf "seed %d" seed)
      pcfg.Service.socket_path rcfg.Replica.socket_path;
    assert_fsck_clean
      ~ctx:(Printf.sprintf "seed %d" seed)
      rcfg.Replica.data_dir;
    tears :=
      !tears
      + List.length
          (List.filter
             (function Fault.Short_write _ -> true | _ -> false)
             (Fault.events chaos))
  done;
  (* the plan must actually have torn the stream somewhere across the ten
     runs, or the property tested nothing *)
  Alcotest.(check bool)
    (Printf.sprintf "fault plan injected tears (saw %d)" !tears)
    true (!tears > 0)

(* ------------------------------------------------------------------ *)
(* Restart: resume from the durable byte offset                        *)
(* ------------------------------------------------------------------ *)

let test_restart_resume () =
  with_primary [ ("lib", lib_doc ()) ] @@ fun pcfg _service ->
  let v1 = write_mix ~seed:21 ~ops:5 pcfg.Service.socket_path in
  let rcfg = replica_config ~primary:pcfg.Service.socket_path () in
  (with_replica rcfg @@ fun r -> wait_version r v1);
  (* replica is down; the primary moves on *)
  let v2 = write_mix ~seed:22 ~ops:7 pcfg.Service.socket_path in
  (* same data dir: bootstrap resumes from local files instead of
     re-mirroring, then catches up over the wire *)
  with_replica rcfg @@ fun r ->
  wait_version r v2;
  check_identical ~ctx:"after restart" pcfg.Service.socket_path
    rcfg.Replica.socket_path;
  assert_fsck_clean ~ctx:"restarted mirror" rcfg.Replica.data_dir

(* ------------------------------------------------------------------ *)
(* Rotation: catch up through archived segments                        *)
(* ------------------------------------------------------------------ *)

let test_rotation_catch_up () =
  (* a tiny segment threshold forces several rotations *)
  with_primary ~wal_segment_bytes:256 [ ("lib", lib_doc ()) ]
  @@ fun pcfg _service ->
  let v1 = write_mix ~seed:31 ~ops:40 pcfg.Service.socket_path in
  let gen_now () =
    (* read the generation off the data dir: the highest ckpt pair *)
    let rec probe g =
      let x, _ =
        Wal.checkpoint_files (Filename.concat pcfg.Service.data_dir "lib.wal")
          (g + 1)
      in
      if Sys.file_exists x then probe (g + 1) else g
    in
    probe 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "primary rotated (gen %d)" (gen_now ()))
    true
    (gen_now () > 0);
  (* bootstrap against an already-rotated primary *)
  let rcfg = replica_config ~primary:pcfg.Service.socket_path () in
  with_replica rcfg @@ fun r ->
  wait_version r v1;
  check_identical ~ctx:"bootstrap past rotations" pcfg.Service.socket_path
    rcfg.Replica.socket_path;
  (* now rotate several more times underneath a live follower *)
  let v2 = write_mix ~seed:32 ~ops:40 pcfg.Service.socket_path in
  wait_version r v2;
  check_identical ~ctx:"rotation under a live follower"
    pcfg.Service.socket_path rcfg.Replica.socket_path;
  assert_fsck_clean ~ctx:"rotated mirror" rcfg.Replica.data_dir

(* ------------------------------------------------------------------ *)
(* Commit pipelines: multi-group primary, byte-faithful mirror         *)
(* ------------------------------------------------------------------ *)

let read_file p =
  let ic = open_in_bin p in
  let b = really_input_string ic (in_channel_length ic) in
  close_in ic;
  b

let test_multi_group_catch_up () =
  (* Three documents hashed over four commit pipelines, written by
     concurrent per-document writers: the replica must converge to
     byte-identical replies AND byte-identical mirror files — WAL
     shipping copies journal bytes verbatim, so four pipelines
     interleaving their disjoint journals must not perturb a single
     byte of any one of them. *)
  let names = [ "alpha"; "beta"; "gamma" ] in
  let docs = List.map (fun n -> (n, lib_doc ())) names in
  with_primary ~commit_groups:4 ~workers:4 docs @@ fun pcfg _service ->
  let burst tag =
    let writer k name () =
      C.with_connection pcfg.Service.socket_path @@ fun c ->
      for i = 1 to 12 do
        ignore
          (C.request c
             (P.Update
                {
                  doc = name;
                  op =
                    Wal.Insert
                      {
                        parent_rank = 0;
                        pos = i mod 2;
                        tag = Printf.sprintf "inserted%s%d x%d" tag k i;
                      };
                }))
      done
    in
    let threads = List.mapi (fun k n -> Thread.create (writer k n) ()) names in
    List.iter Thread.join threads;
    C.with_connection pcfg.Service.socket_path @@ fun c ->
    match C.request c P.Docs with
    | P.Ok_ body -> (
      match C.kv_int body "v" with
      | Some v -> v
      | None -> Alcotest.fail "DOCS reply lacks v=")
    | r -> Alcotest.failf "DOCS: %s" (P.response_to_string r)
  in
  let v1 = burst "a" in
  let rcfg = replica_config ~primary:pcfg.Service.socket_path () in
  with_replica rcfg @@ fun r ->
  wait_version r v1;
  check_identical ~ctx:"multi-group bootstrap" pcfg.Service.socket_path
    rcfg.Replica.socket_path;
  (* a second concurrent burst streams live over WAIT *)
  let v2 = burst "b" in
  wait_version r v2;
  check_identical ~ctx:"multi-group live stream" pcfg.Service.socket_path
    rcfg.Replica.socket_path;
  (* mirror fidelity, document by document: journal and snapshot pair
     byte-identical once the stream drains *)
  List.iter
    (fun name ->
      List.iter
        (fun ext ->
          let file = name ^ ext in
          let pa = Filename.concat pcfg.Service.data_dir file
          and ra = Filename.concat rcfg.Replica.data_dir file in
          wait_until
            ~what:(Printf.sprintf "%s to drain to the mirror" file)
            (fun () -> read_file pa = read_file ra);
          Alcotest.(check bool)
            (file ^ " byte-identical on the mirror")
            true
            (read_file pa = read_file ra))
        [ ".xml"; ".ruid"; ".wal" ];
      let xml = Filename.concat rcfg.Replica.data_dir (name ^ ".xml")
      and sidecar = Filename.concat rcfg.Replica.data_dir (name ^ ".ruid")
      and wal = Filename.concat rcfg.Replica.data_dir (name ^ ".wal") in
      match Wal.fsck ~xml ~sidecar ~wal () with
      | Wal.Clean -> ()
      | st ->
        Alcotest.failf "mirror of %s not clean: %a" name Wal.pp_status st)
    names

(* ------------------------------------------------------------------ *)
(* Fenced failover: 10-seed split-brain suite                          *)
(* ------------------------------------------------------------------ *)

(* One full failover story per seed: a chain primary <- f1 <- f2, a write
   mix, a hard primary stop, promotion of f1, more writes, and then the
   surviving pair must answer every probe byte-identically, every data
   directory must fsck clean, and bytes from behind the fence must be
   provably refused. *)
let failover_story seed =
  let pdir = temp_dir () in
  let pcfg =
    {
      Service.socket_path = sock_path ();
      data_dir = pdir;
      workers = 2;
      max_queue = 32;
      deadline_ms = 0;
      max_area_size = 8;
      max_depth = 10_000;
      domains = 0;
      cache_mb = 0;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups = (if seed mod 2 = 0 then 2 else 1);
      wal_segment_bytes = (if seed mod 2 = 0 then 400 else 0);
      planner = true;
      plan_cache = 64;
      epoch = 1;
    }
  in
  let service = Service.start pcfg [ ("lib", lib_doc ()) ] in
  let stopped = ref false in
  Fun.protect
    ~finally:(fun () -> if not !stopped then Service.stop service)
  @@ fun () ->
  let f1cfg = replica_config ~poll_ms:20 ~primary:pcfg.Service.socket_path () in
  with_replica f1cfg @@ fun f1 ->
  let f2cfg =
    replica_config ~poll_ms:20 ~primary:f1cfg.Replica.socket_path ()
  in
  with_replica f2cfg @@ fun f2 ->
  let v1 = write_mix ~seed ~ops:10 pcfg.Service.socket_path in
  wait_version f1 v1;
  wait_version f2 v1;
  (* hard-stop the primary (writes are quiesced: the mix returned) *)
  Service.stop service;
  stopped := true;
  (* promote the first follower; idempotent on a second call *)
  let promote_body =
    C.with_connection f1cfg.Replica.socket_path @@ fun c ->
    let b = ok_body (C.request c P.Promote) in
    let b2 = ok_body (C.request c P.Promote) in
    Alcotest.(check (option int))
      "second PROMOTE is idempotent" (C.kv_int b "epoch")
      (C.kv_int b2 "epoch");
    b
  in
  Alcotest.(check (option int)) "promotion bumped the epoch" (Some 2)
    (C.kv_int promote_body "epoch");
  Alcotest.(check bool) "role flipped" true (Replica.role f1 = `Promoted);
  (* the new primary accepts writes; f2 keeps following through it *)
  let v2 = write_mix ~seed:(seed * 7) ~ops:8 f1cfg.Replica.socket_path in
  Alcotest.(check bool)
    (Printf.sprintf "failover writes advanced the version (%d > %d)" v2 v1)
    true (v2 > v1);
  wait_version f2 v2;
  check_identical
    ~ctx:(Printf.sprintf "seed %d survivors" seed)
    f1cfg.Replica.socket_path f2cfg.Replica.socket_path;
  Alcotest.(check int)
    "follower adopted the bumped epoch" 2
    (stats_kv f2cfg.Replica.socket_path "repl_epoch");
  (* every data directory — including the dead primary's — fscks clean *)
  assert_fsck_clean ~ctx:(Printf.sprintf "seed %d primary" seed) pdir;
  assert_fsck_clean
    ~ctx:(Printf.sprintf "seed %d f1" seed)
    f1cfg.Replica.data_dir;
  assert_fsck_clean
    ~ctx:(Printf.sprintf "seed %d f2" seed)
    f2cfg.Replica.data_dir;
  (* fencing proof: a data directory that has followed epoch 2 refuses a
     node still serving epoch 1 — the deposed primary's bytes can never
     merge.  (A fresh service plays the deposed primary.) *)
  let deposed_dir = temp_dir () in
  let deposed =
    Service.start
      { pcfg with Service.socket_path = sock_path (); data_dir = deposed_dir }
      [ ("lib", lib_doc ()) ]
  in
  Fun.protect ~finally:(fun () -> Service.stop deposed) @@ fun () ->
  let fenced_cfg =
    {
      (replica_config ~primary:(Service.config deposed).Service.socket_path ())
      with
      Replica.data_dir = f2cfg.Replica.data_dir;
    }
  in
  match Replica.start fenced_cfg with
  | t ->
    Replica.stop t;
    Alcotest.failf "seed %d: epoch-1 primary was not fenced out" seed
  | exception Replica.Fenced { seen; got } ->
    Alcotest.(check int) "fence height" 2 seen;
    Alcotest.(check int) "deposed epoch" 1 got

let test_failover_seeds () =
  for seed = 1 to 10 do
    failover_story seed
  done

let suite =
  [
    Alcotest.test_case "bootstrap + live stream byte-identical" `Quick
      test_bootstrap_and_live;
    Alcotest.test_case "torn stream resumes and converges (10 seeds)" `Slow
      test_torn_stream_seeds;
    Alcotest.test_case "restart resumes from durable offset" `Quick
      test_restart_resume;
    Alcotest.test_case "rotation catch-up from archives" `Slow
      test_rotation_catch_up;
    Alcotest.test_case "multi-group primary: byte-faithful mirror" `Quick
      test_multi_group_catch_up;
    Alcotest.test_case "fenced failover split-brain (10 seeds)" `Slow
      test_failover_seeds;
  ]
