module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module P = Ruid.Persist
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let build_doc seed n =
  let root =
    Shape.generate ~seed ~target:n (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  (root, R2.number ~max_area_size:10 root)

let test_bytes_round_trip () =
  let root, r2 = build_doc 1 200 in
  let bytes = P.sidecar_to_bytes r2 in
  (* Restore against a structurally identical clone. *)
  let clone = Dom.clone root in
  let r2' = P.sidecar_of_bytes clone bytes in
  R2.check_consistency r2';
  Alcotest.(check int) "kappa preserved" (R2.kappa r2) (R2.kappa r2');
  Alcotest.(check int) "areas preserved" (R2.area_count r2) (R2.area_count r2');
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identifiers preserved"
        (R2.id_to_string (R2.id_of_node r2 a))
        (R2.id_to_string (R2.id_of_node r2' b)))
    (Dom.preorder root) (Dom.preorder clone)

let test_file_round_trip () =
  let _root, r2 = build_doc 2 150 in
  let xml = tmp "ruid_test.xml" and sidecar = tmp "ruid_test.ruid" in
  P.save r2 ~xml ~sidecar;
  let _doc, r2' = P.load ~xml ~sidecar () in
  R2.check_consistency r2';
  Alcotest.(check int) "same node count"
    (List.length (R2.all_nodes r2))
    (List.length (R2.all_nodes r2'));
  (* Identifier streams coincide in document order. *)
  List.iter2
    (fun a b ->
      Alcotest.(check string) "ids equal"
        (R2.id_to_string (R2.id_of_node r2 a))
        (R2.id_to_string (R2.id_of_node r2' b)))
    (R2.all_nodes r2) (R2.all_nodes r2');
  Sys.remove xml;
  Sys.remove sidecar

let test_updates_after_load () =
  let root, r2 = build_doc 3 120 in
  let bytes = P.sidecar_to_bytes r2 in
  let clone = Dom.clone root in
  let r2' = P.sidecar_of_bytes clone bytes in
  let rng = Rng.create 6 in
  for _ = 1 to 20 do
    let parent = Shape.random_node rng clone in
    ignore
      (R2.insert_node r2' ~parent ~pos:(Rng.int rng (Dom.degree parent + 1))
         (Dom.element "post-load"))
  done;
  R2.check_consistency r2'

let test_garbage_rejected () =
  let root, r2 = build_doc 4 50 in
  ignore r2;
  (match P.sidecar_of_bytes root (Bytes.of_string "NOTRUID") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of bad magic");
  (* A sidecar from a different document must fail the consistency check. *)
  let other, other_r2 = build_doc 5 60 in
  ignore other;
  match P.sidecar_of_bytes root (P.sidecar_to_bytes other_r2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of mismatched sidecar"

let test_whitespace_preserved () =
  (* Text nodes are numbered too; persistence must keep them so the
     identifier stream lines up. *)
  let doc = Rxml.Parser.parse_string ~keep_whitespace:true "<a> <b/> <c>x</c></a>" in
  let root = Dom.root_element doc in
  let r2 = R2.number ~max_area_size:4 root in
  let xml = tmp "ruid_ws.xml" and sidecar = tmp "ruid_ws.ruid" in
  P.save r2 ~xml ~sidecar;
  let _, r2' = P.load ~xml ~sidecar () in
  R2.check_consistency r2';
  Alcotest.(check int) "all nodes restored"
    (List.length (R2.all_nodes r2))
    (List.length (R2.all_nodes r2'));
  Sys.remove xml;
  Sys.remove sidecar

let prop_round_trip_random =
  Util.qtest ~count:25 "sidecars restore random documents"
    QCheck.(pair (int_range 2 200) (int_range 2 20))
    (fun (n, area) ->
      let root =
        Shape.generate ~seed:(n * 17 + area) ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 })
      in
      let r2 = R2.number ~max_area_size:area root in
      let clone = Dom.clone root in
      let r2' = P.sidecar_of_bytes clone (P.sidecar_to_bytes r2) in
      List.for_all2
        (fun a b ->
          R2.id_equal (R2.id_of_node r2 a) (R2.id_of_node r2' b))
        (Dom.preorder root) (Dom.preorder clone))

(* Regression: numbering rooted at the document node (the CLI's normal
   mode) must restore against the reparsed document node, not its root
   element. *)
let test_document_rooted_round_trip () =
  let doc =
    Rxml.Parser.parse_string ~keep_whitespace:true
      "<?xml version='1.0'?><!-- prolog --><a><b>x</b><c/></a>"
  in
  let r2 = R2.number ~max_area_size:3 doc in
  let xml = tmp "ruid_docroot.xml" and sidecar = tmp "ruid_docroot.ruid" in
  P.save r2 ~xml ~sidecar;
  let _doc2, r2' = P.load ~xml ~sidecar () in
  R2.check_consistency r2';
  Alcotest.(check int) "all nodes restored"
    (List.length (R2.all_nodes r2))
    (List.length (R2.all_nodes r2'));
  Sys.remove xml;
  Sys.remove sidecar

(* ---- format v3: versioning, per-section checksums, atomic save ---- *)

let test_version_detection () =
  let _root, r2 = build_doc 6 80 in
  Alcotest.(check int) "writer emits v3" 3
    (P.version_of_bytes (P.sidecar_to_bytes r2));
  Alcotest.(check int) "legacy writer emits v2" 2
    (P.version_of_bytes (P.sidecar_to_bytes_v2 r2));
  match P.version_of_bytes (Bytes.of_string "JUNKJUNK") with
  | _ -> Alcotest.fail "expected bad magic to be rejected"
  | exception Invalid_argument _ -> ()

let test_v2_compat () =
  let root, r2 = build_doc 7 120 in
  let r2' = P.sidecar_of_bytes (Dom.clone root) (P.sidecar_to_bytes_v2 r2) in
  R2.check_consistency r2';
  let r2'' = P.sidecar_of_bytes (Dom.clone root) (P.sidecar_to_bytes r2) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "v2 and v3 restore the same numbering" true
        (R2.id_equal (R2.id_of_node r2' a) (R2.id_of_node r2'' b)))
    (R2.all_nodes r2') (R2.all_nodes r2'')

(* Walk the v3 framing (magic, then per section: length varint | payload |
   CRC-32) to find each payload's extent. *)
let v3_section_spans bytes =
  let magic_len = 5 in
  let pos = ref magic_len in
  List.map
    (fun name ->
      let len, p = Ruid.Codec.read_varint bytes ~pos:!pos in
      let span = (name, p, len) in
      pos := p + len + 4;
      span)
    [ "header"; "ktable"; "ids" ]

let test_section_errors_name_the_damage () =
  let root, r2 = build_doc 8 100 in
  let bytes = P.sidecar_to_bytes r2 in
  List.iter
    (fun (name, start, len) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s section is non-empty" name)
        true (len > 0);
      let b = Bytes.copy bytes in
      (* Flip one bit in the middle of the section's payload. *)
      let target = start + (len / 2) in
      Bytes.set b target (Char.chr (Char.code (Bytes.get b target) lxor 0x10));
      match P.sidecar_of_bytes (Dom.clone root) b with
      | _ -> Alcotest.fail "corruption not detected"
      | exception Invalid_argument msg ->
        let contains needle =
          let nl = String.length needle and ml = String.length msg in
          let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names the %s section: %s" name msg)
          true
          (contains (name ^ " section"));
        Alcotest.(check bool) "error carries a byte offset" true
          (contains "byte");
        Alcotest.(check bool) "error names the checksum" true
          (contains "checksum mismatch"))
    (v3_section_spans bytes)

let test_atomic_save () =
  let root, r2 = build_doc 9 90 in
  let xml = tmp "ruid_atomic.xml" and sidecar = tmp "ruid_atomic.ruid" in
  P.save r2 ~xml ~sidecar;
  let before = List.length (R2.all_nodes r2) in
  (* Mutate the numbering, then crash every subsequent write mid-file. *)
  ignore
    (R2.insert_node r2 ~parent:root ~pos:0 (Dom.element "casualty"));
  let p = Rstorage.Fault.plan ~seed:10 ~p_short_write:1.0 () in
  (match P.save ~vfs:(Rstorage.Fault.wrap p Ruid.Vfs.real) r2 ~xml ~sidecar with
  | () -> Alcotest.fail "expected the injected crash"
  | exception Ruid.Vfs.Crash _ -> ());
  (* The published files are untouched: the torn write only ever hit the
     temporary file, so the old snapshot still loads cleanly. *)
  let _doc, r2' = P.load ~xml ~sidecar () in
  R2.check_consistency r2';
  Alcotest.(check int) "pre-crash snapshot intact" before
    (List.length (R2.all_nodes r2'));
  Sys.remove xml;
  Sys.remove sidecar

let suite =
  [
    Alcotest.test_case "bytes round trip" `Quick test_bytes_round_trip;
    Alcotest.test_case "version detection" `Quick test_version_detection;
    Alcotest.test_case "v2 sidecars still load" `Quick test_v2_compat;
    Alcotest.test_case "per-section corruption reporting" `Quick
      test_section_errors_name_the_damage;
    Alcotest.test_case "atomic save survives torn writes" `Quick
      test_atomic_save;
    Alcotest.test_case "document-rooted round trip" `Quick test_document_rooted_round_trip;
    prop_round_trip_random;
    Alcotest.test_case "file round trip" `Quick test_file_round_trip;
    Alcotest.test_case "updates after load" `Quick test_updates_after_load;
    Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
    Alcotest.test_case "whitespace-bearing documents" `Quick test_whitespace_preserved;
  ]
