module Dom = Rxml.Dom
module C = Rxpath.Collection
module Shape = Rworkload.Shape

let setup () =
  let c = C.create ~max_area_size:8 () in
  let d1 =
    C.add c ~name:"auctions" (Rworkload.Xmark.generate ~seed:1 ~scale:0.5)
  in
  let d2 =
    C.add c ~name:"library" (Rworkload.Dblp.generate ~seed:2 ~publications:50)
  in
  let d3 =
    C.add c ~name:"misc"
      (Shape.generate ~seed:3 ~tags:[| "x"; "y" |] ~target:100
         (Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }))
  in
  (c, d1, d2, d3)

let test_registry () =
  let c, d1, d2, _ = setup () in
  Alcotest.(check int) "three docs" 3 (C.doc_count c);
  Alcotest.(check (list string)) "names" [ "auctions"; "library"; "misc" ] (C.names c);
  Alcotest.(check bool) "find" true (C.find c "library" = Some d2);
  Alcotest.(check string) "name_of" "auctions" (C.name_of c d1);
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Collection.add: duplicate name misc") (fun () ->
      ignore (C.add c ~name:"misc" (Dom.element "x")))

let test_gid_round_trip () =
  let c, _, d2, _ = setup () in
  let root = Ruid.Ruid2.root (C.ruid c d2) in
  List.iter
    (fun n ->
      let g = C.gid_of_node c d2 n in
      match C.node_of_gid c g with
      | Some m -> Alcotest.(check int) "round trip" n.Dom.serial m.Dom.serial
      | None -> Alcotest.fail "gid did not resolve")
    (Dom.preorder root)

let test_cross_doc_relationship () =
  let c, d1, d2, _ = setup () in
  let r1 = Ruid.Ruid2.root (C.ruid c d1) in
  let r2 = Ruid.Ruid2.root (C.ruid c d2) in
  let g1 = C.gid_of_node c d1 r1 and g2 = C.gid_of_node c d2 r2 in
  Alcotest.(check bool) "cross-document is None" true
    (C.relationship c g1 g2 = None);
  Alcotest.(check bool) "same-document works" true
    (C.relationship c g1 g1 = Some Ruid.Rel.Self)

let test_query_all () =
  let c, d1, d2, _ = setup () in
  let docs_of hits = List.map fst hits in
  Alcotest.(check bool) "items only in the auction doc" true
    (docs_of (C.query c "//item") = [ d1 ]);
  Alcotest.(check bool) "authors only in the library" true
    (docs_of (C.query c "//author") = [ d2 ]);
  Alcotest.(check int) "no ghosts" 0 (List.length (C.query c "//nothing"))

let test_memory_accounting () =
  let c, _, _, _ = setup () in
  Alcotest.(check bool) "nodes counted" true (C.total_nodes c > 500);
  Alcotest.(check bool) "aux memory is the K tables" true
    (C.aux_memory_words c > 0)

(* The Hashtbl name index and the doubling backing store: registration
   stays correct well past the initial capacity, [names] preserves
   insertion order, and every name remains findable (a linear-scan
   registry would still pass this, but the indexed one must too). *)
let test_amortized_growth () =
  let c = C.create ~max_area_size:8 () in
  let n = 100 in
  let ids =
    List.init n (fun i ->
        let name = Printf.sprintf "doc%03d" i in
        C.add c ~name
          (Shape.generate ~seed:i ~tags:[| "x"; "y" |] ~target:10
             (Shape.Uniform { fanout_lo = 1; fanout_hi = 2 })))
  in
  Alcotest.(check int) "all registered" n (C.doc_count c);
  Alcotest.(check (list string)) "insertion order preserved"
    (List.init n (Printf.sprintf "doc%03d"))
    (C.names c);
  List.iteri
    (fun i id ->
      let name = Printf.sprintf "doc%03d" i in
      (match C.find c name with
      | Some found when found = id -> ()
      | Some _ -> Alcotest.failf "%s resolved to the wrong document" name
      | None -> Alcotest.failf "%s not found after growth" name);
      Alcotest.(check string) "name_of inverts find" name (C.name_of c id))
    ids;
  Alcotest.(check bool) "misses still miss" true (C.find c "doc999" = None)

let test_add_numbered () =
  let c = C.create ~max_area_size:8 () in
  let root =
    Rxml.Dom.root_element (Rxml.Parser.parse_string "<a><b/><c/></a>")
  in
  let r2 = Ruid.Ruid2.number ~max_area_size:8 root in
  let id = C.add_numbered c ~name:"pre" r2 in
  (* registered without re-numbering: the very same numbering comes back *)
  Alcotest.(check bool) "numbering preserved" true (C.ruid c id == r2);
  Alcotest.(check bool) "findable" true (C.find c "pre" = Some id);
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Collection.add: duplicate name pre") (fun () ->
      ignore (C.add_numbered c ~name:"pre" r2))

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "gid round trip" `Quick test_gid_round_trip;
    Alcotest.test_case "cross-document relationship" `Quick test_cross_doc_relationship;
    Alcotest.test_case "query across documents" `Quick test_query_all;
    Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
    Alcotest.test_case "amortized growth and name index" `Quick
      test_amortized_growth;
    Alcotest.test_case "add_numbered" `Quick test_add_numbered;
  ]
