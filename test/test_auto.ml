module Dom = Rxml.Dom
module Auto = Rxpath.Auto
open Util

let setup () =
  let site = Rworkload.Xmark.generate ~seed:31 ~scale:0.8 in
  let doc = Dom.document () in
  Dom.append_child doc site;
  let r2 = Ruid.Ruid2.number ~max_area_size:16 doc in
  (Auto.create r2, Rxpath.Engine_naive.create doc)

let strategy = Alcotest.testable Auto.pp_strategy ( = )

let test_strategy_selection () =
  let auto, _ = setup () in
  List.iter
    (fun (q, expected) ->
      Alcotest.check strategy q expected (Auto.choose auto q))
    [
      ("//item/name", Auto.Plan);
      ("/site/regions/africa/item", Auto.Plan);
      ("//person[creditcard]/name", Auto.Twig_join);
      ("//item[description//listitem]", Auto.Twig_join);
      ("//item[@id='x']", Auto.Engine);
      ("//item[2]", Auto.Engine);
      ("//name | //payment", Auto.Engine);
      ("//listitem/ancestor::item", Auto.Engine);
      (* structurally impossible label paths: refuted by the DataGuide *)
      ("//warehouse/item", Auto.Pruned);
      ("//person/bidder/name", Auto.Pruned);
    ]

let test_results_match_naive () =
  let auto, naive = setup () in
  List.iter
    (fun q ->
      check_node_list q (Rxpath.Eval.query naive q) (Auto.query auto q))
    [
      "//item/name";
      "/site/regions/africa/item";
      "//person[creditcard]/name";
      "//item[description//listitem]/quantity";
      "//item[@id='itemafrica1']";
      "//bidder[1]/increase";
      "//name | //payment";
      "//listitem/ancestor::item";
      "//annotation/preceding::bidder";
    ]

(* Property: for seeded random twig-fragment queries — including ones the
   DataGuide prunes to empty — the planner answers exactly what the RUID
   engine answers.  Tags mix real XMark labels with ones the generator
   never emits, so refutations are exercised alongside every join kind. *)
let gen_query st =
  let tags =
    [|
      "site"; "regions"; "item"; "name"; "description"; "payment";
      "quantity"; "people"; "person"; "profile"; "interest"; "creditcard";
      "open_auction"; "bidder"; "increase"; "current"; "closed_auction";
      "annotation"; "price"; "category"; "listitem"; "parlist"; "text";
      "warehouse"; "zzz";
    |]
  in
  let tag () = tags.(Random.State.int st (Array.length tags)) in
  let edge () = if Random.State.bool st then "/" else "//" in
  let b = Buffer.create 32 in
  let steps = 1 + Random.State.int st 3 in
  for _ = 1 to steps do
    Buffer.add_string b (edge ());
    Buffer.add_string b (tag ());
    if Random.State.int st 4 = 0 then
      Buffer.add_string b
        (match Random.State.int st 3 with
        | 0 -> Printf.sprintf "[%s]" (tag ())
        | 1 -> Printf.sprintf "[%s/%s]" (tag ()) (tag ())
        | _ -> Printf.sprintf "[%s//%s]" (tag ()) (tag ()))
  done;
  Buffer.contents b

let test_property_matches_ruid () =
  let auto, _ = setup () in
  let planner = Auto.planner auto in
  let engine = Rxpath.Planner.engine planner in
  let seen = Hashtbl.create 8 in
  for seed = 1 to 50 do
    let st = Random.State.make [| seed |] in
    let q = gen_query st in
    Hashtbl.replace seen (Auto.choose auto q) ();
    check_node_list
      (Printf.sprintf "seed %d: %s" seed q)
      (Rxpath.Eval.query engine q) (Auto.query auto q)
  done;
  Alcotest.(check bool)
    "pruned-to-empty queries were generated" true
    (Hashtbl.mem seen Auto.Pruned);
  Alcotest.(check bool)
    "plannable queries were generated" true
    (Hashtbl.mem seen Auto.Plan)

let test_context_respected () =
  let auto, naive = setup () in
  let regions = List.hd (Rxpath.Eval.query naive "/site/regions") in
  check_node_list "relative plan from context"
    (Rxpath.Eval.query naive ~context:regions "africa/item/name")
    (Auto.query auto ~context:regions "africa/item/name")

let suite =
  [
    Alcotest.test_case "strategy selection" `Quick test_strategy_selection;
    Alcotest.test_case "results match the naive engine" `Quick test_results_match_naive;
    Alcotest.test_case "50-seed property: planner = ruid engine" `Quick
      test_property_matches_ruid;
    Alcotest.test_case "context respected" `Quick test_context_respected;
  ]
