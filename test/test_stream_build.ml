(* Streaming build ≡ DOM round-trip: the single-pass chunked-SAX ingest
   (Stream_build) must produce byte-identical persistence artifacts and the
   same Doc_index geometry as reading the text, parsing a DOM and
   numbering it — over random document shapes, every chunking of the feed,
   both numbering roots, and the online (explicit depth budget) cut. *)

module Dom = Rxml.Dom
module Sax = Rxml.Sax
module R2 = Ruid.Ruid2
module SB = Ruid.Stream_build
module Persist = Ruid.Persist
module Shape = Rworkload.Shape

(* A channel-less chunked source: hands the string out in slices of the
   seeded sizes (cycled), exercising token splits at refill boundaries. *)
let chopped_source src sizes =
  let sent = ref 0 and i = ref 0 in
  Sax.source_of_refill ~chunk:16 (fun buf off len ->
      if !sent >= String.length src then 0
      else begin
        let want = max 1 (List.nth sizes (!i mod List.length sizes)) in
        incr i;
        let n = min (min len want) (String.length src - !sent) in
        Bytes.blit_string src !sent buf off n;
        sent := !sent + n;
        n
      end)

let dom_build ?(parser = `Parser) ~at src =
  (* [`Parser] is the ruidtool file path; [`Sax] the legacy server ingest
     path (Sax.build_dom on the full string).  They differ only on CDATA
     adjacent to character data, which Sax coalesces into one text node. *)
  let doc =
    match parser with
    | `Parser -> Rxml.Parser.parse_string src
    | `Sax -> Sax.build_dom src
  in
  let root = match at with `Document -> doc | `Root_element -> Dom.root_element doc in
  R2.number root

(* Byte-identity of the two artifacts Persist.save would write, plus the
   deep invariant sweep on the streamed numbering. *)
let check_identical ~what r2_stream r2_dom =
  R2.check r2_stream;
  Alcotest.(check string)
    (what ^ ": xml artifact byte-identical")
    (Bytes.to_string (Persist.xml_to_bytes r2_dom))
    (Bytes.to_string (Persist.xml_to_bytes r2_stream));
  Alcotest.(check string)
    (what ^ ": ruid sidecar byte-identical")
    (Bytes.to_string (Persist.sidecar_to_bytes r2_dom))
    (Bytes.to_string (Persist.sidecar_to_bytes r2_stream))

(* Equal Doc_index geometry: walking both trees in document order, every
   node pair carries the same rank and subtree extent. *)
let check_ranks r2_stream r2_dom =
  let ia = Rxpath.Doc_index.build r2_stream
  and ib = Rxpath.Doc_index.build r2_dom in
  Alcotest.(check int) "index sizes" (Rxpath.Doc_index.size ib)
    (Rxpath.Doc_index.size ia);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "rank"
        (Rxpath.Doc_index.rank ib b)
        (Rxpath.Doc_index.rank ia a);
      Alcotest.(check (pair int int))
        "extent"
        (Rxpath.Doc_index.extent ib b)
        (Rxpath.Doc_index.extent ia a))
    (Dom.preorder (R2.root r2_stream))
    (Dom.preorder (R2.root r2_dom))

let gen_doc seed n =
  let root =
    Shape.generate ~seed ~target:(max 1 n)
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  (* sprinkle text and attributes so non-element nodes cross area cuts *)
  List.iteri
    (fun i e ->
      if i mod 3 = 0 then Dom.append_child e (Dom.text (Printf.sprintf "t%d" i));
      if i mod 5 = 0 then Dom.set_attr e "k" (string_of_int i))
    (Dom.elements root);
  Rxml.Serializer.to_string root

let prop_equiv =
  Util.qtest ~count:40 "streaming build == parse+number (artifacts, ranks)"
    QCheck.(pair (int_range 1 120) (int_range 0 1000))
    (fun (n, seed) ->
      let src = gen_doc seed n in
      List.for_all
        (fun at ->
          let r2_dom = dom_build ~at src in
          (* string feed *)
          let b1 = SB.of_string ~at src in
          check_identical ~what:"string feed" b1.SB.r2 r2_dom;
          (* hostile chunking: 1-byte and mixed prime-sized refills *)
          let sizes = [ 1; 7; 3; 1; 13; 2 ] in
          let b2 = SB.of_source ~at (chopped_source src sizes) in
          check_identical ~what:"chopped feed" b2.SB.r2 r2_dom;
          check_ranks b2.SB.r2 r2_dom;
          true)
        [ `Document; `Root_element ])

let prop_online_cut =
  Util.qtest ~count:30 "online Cut_builder cut == greedy partition cut"
    QCheck.(pair (int_range 1 150) (int_range 0 1000))
    (fun (n, seed) ->
      let src = gen_doc seed n in
      List.for_all
        (fun (size, depth, adjust) ->
          let doc = Rxml.Parser.parse_string src in
          let r2_dom =
            R2.number ~max_area_size:size ~max_area_depth:depth ~adjust doc
          in
          let b =
            SB.of_string ~max_area_size:size ~max_area_depth:depth ~adjust
              ~at:`Document src
          in
          check_identical ~what:"online cut" b.SB.r2 r2_dom;
          true)
        [ (4, 2, false); (4, 2, true); (16, 3, true); (64, 8, true) ])

let test_mixed_markup () =
  let src =
    "<?xml version='1.0'?><!DOCTYPE r><r a='1'><!--c--><x>hi &amp; \
     <![CDATA[<raw>]]></x><?pi data?><y/><y>deep<z>er</z></y></r>"
  in
  List.iter
    (fun at ->
      (* CDATA sits next to character data here, so the reference is the
         legacy server ingest path (Sax.build_dom), which coalesces them *)
      let r2_dom = dom_build ~parser:`Sax ~at src in
      let b = SB.of_string ~at src in
      check_identical ~what:"mixed markup" b.SB.r2 r2_dom;
      check_ranks b.SB.r2 r2_dom)
    [ `Document; `Root_element ]

let test_stats () =
  let b = SB.of_string "<r><a><b/><b/><b/></a><c>t</c></r>" in
  Alcotest.(check int) "elements" 6 b.SB.stats.SB.elements;
  (* 6 elements + 1 text + document node *)
  Alcotest.(check int) "nodes" 8 b.SB.stats.SB.nodes;
  Alcotest.(check int) "max fanout" 3 b.SB.stats.SB.max_fanout;
  Alcotest.(check int) "max depth" 3 b.SB.stats.SB.max_depth

let test_truncated_feeds () =
  (* Cutting the document anywhere — including inside a tag name, an
     entity, a comment terminator — must raise Parse_error, never loop or
     crash, whatever the chunking. *)
  let src = "<root at='v'><mid>text &lt; <!--note--><leaf/></mid></root>" in
  let n = String.length src in
  List.iter
    (fun cut ->
      let truncated = String.sub src 0 cut in
      match
        SB.of_source ~at:`Document (chopped_source truncated [ 1; 3; 2 ])
      with
      | exception Rxml.Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "truncation at byte %d was accepted" cut)
    (List.init (n - 1) (fun i -> i)
    |> List.filter (fun i -> i mod 3 = 0 || i > n - 12))

let test_depth_budget () =
  (* satellite: Sax enforces the same nesting budget as Parser *)
  let deep k =
    String.concat "" (List.init k (fun i -> Printf.sprintf "<d%d>" i))
    ^ "x"
    ^ String.concat ""
        (List.init k (fun i -> Printf.sprintf "</d%d>" (k - 1 - i)))
  in
  (match Sax.iter ~max_depth:10 (deep 11) ~f:(fun _ -> ()) with
  | exception Rxml.Parser.Parse_error e ->
    Alcotest.(check bool) "names the budget" true
      (String.length e.Rxml.Parser.message > 0)
  | () -> Alcotest.fail "depth 11 accepted under budget 10");
  Sax.iter ~max_depth:10 (deep 10) ~f:(fun _ -> ());
  (match SB.of_string ~max_depth:10 (deep 11) with
  | exception Rxml.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "Stream_build accepted over-deep document");
  (* a self-closing element counts against the budget too, as in Parser *)
  let leaf_at k = deep k |> fun s ->
    let i = String.index s 'x' in
    String.sub s 0 i ^ "<l/>" ^ String.sub s (i + 1) (String.length s - i - 1)
  in
  (match Sax.iter ~max_depth:10 (leaf_at 10) ~f:(fun _ -> ()) with
  | exception Rxml.Parser.Parse_error _ -> ()
  | () -> Alcotest.fail "self-closing leaf beyond the budget accepted");
  match Rxml.Parser.parse_string ~max_depth:10 (deep 11) with
  | exception Rxml.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "Parser accepted over-deep document"

let test_large_doc_streams () =
  (* A DBLP-shaped document through a 512-byte-chunk channel feed: the
     numbering matches the string path end to end. *)
  let root = Rworkload.Dblp.generate ~seed:7 ~publications:300 in
  let src = Rxml.Serializer.to_string root in
  let path = Filename.temp_file "stream_build" ".xml" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out_bin path in
  output_string oc src;
  close_out oc;
  let b = SB.of_file ~chunk:512 ~at:`Document path in
  let r2_dom = dom_build ~at:`Document src in
  check_identical ~what:"dblp via channel" b.SB.r2 r2_dom

let suite =
  [
    prop_equiv;
    prop_online_cut;
    Alcotest.test_case "mixed markup" `Quick test_mixed_markup;
    Alcotest.test_case "pass statistics" `Quick test_stats;
    Alcotest.test_case "truncated/chopped feeds fail cleanly" `Quick
      test_truncated_feeds;
    Alcotest.test_case "nesting depth budget on the streaming path" `Quick
      test_depth_budget;
    Alcotest.test_case "large document through a file channel" `Quick
      test_large_doc_streams;
  ]
