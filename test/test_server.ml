(* Concurrent document service: protocol round-trips, snapshot isolation
   under a live writer, admission control (BUSY, deadlines), graceful
   shutdown vs fsck, and thread safety of the storage counters. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module P = Rserver.Protocol
module C = Rserver.Client
module Service = Rserver.Service
module Wal = Rstorage.Wal

let unique =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      ("ruid-srv-" ^ unique ())
  in
  Unix.mkdir d 0o755;
  d

let sock_path () = Filename.concat "/tmp" ("ruid-" ^ unique () ^ ".sock")

let doc_of_string s = Dom.root_element (Rxml.Parser.parse_string s)

let with_server ?(workers = 2) ?(max_queue = 8) ?(deadline_ms = 0)
    ?(max_area_size = 8) ?(max_depth = 10_000) ?(domains = 0) ?(cache_mb = 0)
    ?(commit_interval_us = 0) ?(commit_max_batch = 64) ?(commit_groups = 0)
    ?(wal_segment_bytes = 0) ?(planner = true) ?(plan_cache = 256)
    ?(epoch = 1) docs f =
  let cfg =
    {
      Service.socket_path = sock_path ();
      data_dir = temp_dir ();
      workers;
      max_queue;
      deadline_ms;
      max_area_size;
      max_depth;
      domains;
      cache_mb;
      commit_interval_us;
      commit_max_batch;
      commit_groups;
      wal_segment_bytes;
      planner;
      plan_cache;
      epoch;
    }
  in
  let t = Service.start cfg docs in
  Fun.protect ~finally:(fun () -> Service.stop t) (fun () -> f cfg t)

let ok_body = function
  | P.Ok_ body -> body
  | P.Err m -> Alcotest.failf "unexpected ERR %s" m
  | P.Busy m -> Alcotest.failf "unexpected BUSY %s" m

let get_kv body key =
  match C.kv_int body key with
  | Some v -> v
  | None -> Alcotest.failf "reply %S lacks %s=" body key

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.request_to_string r) with
      | Ok r' ->
        Alcotest.(check string)
          "round-trips" (P.request_to_string r) (P.request_to_string r')
      | Error e -> Alcotest.failf "no parse: %s" e)
    [
      P.Ping; P.Docs; P.Stats; P.Shutdown; P.Query "//a/b[1]";
      P.Count "//item//text"; P.Explain "//book[author]/title";
      P.Check "lib"; P.Sleep 25;
      P.Update { doc = "lib"; op = Wal.Insert { parent_rank = 3; pos = 0; tag = "x" } };
      P.Update { doc = "lib"; op = Wal.Delete { rank = 7 } };
      (* collection-tier verbs *)
      P.Query_doc { doc = "lib"; xpath = "//book[author]/title" };
      P.Count_doc { doc = "lib"; xpath = "//item//text" };
      P.Add_doc { doc = "fresh"; xml = "<a><b/>\n<c/></a>" };
      P.Add_chunk { doc = "big"; off = 0; last = false; bytes = "<a><b" };
      P.Add_chunk { doc = "big"; off = 5; last = true; bytes = "/></a>\n" };
      P.Add_chunk { doc = "tiny"; off = 0; last = true; bytes = "" };
      P.Adopt { doc = "lib"; file = P.Base_xml; last = false; bytes = "<a/>\n" };
      P.Adopt { doc = "lib"; file = P.Ckpt_sidecar 3; last = false; bytes = "" };
      P.Adopt { doc = "lib"; file = P.Active_wal; last = true; bytes = "" };
      P.Adopt_abort "lib";
      P.Drop_doc "lib";
      P.Rebalance { doc = "lib"; target = 2 };
    ]

let test_request_rejects () =
  List.iter
    (fun line ->
      match P.parse_request line with
      | Ok _ -> Alcotest.failf "parsed %S" line
      | Error _ -> ())
    [
      ""; "FROB"; "QUERY"; "COUNT"; "SLEEP x"; "SLEEP -1";
      "UPDATE lib INSERT 1 2"; "UPDATE lib DELETE 0";
      "UPDATE lib DELETE nope"; "UPDATE l i b INSERT 1 2 t";
      "CHECK two words";
      (* collection-tier rejects *)
      "QUERYD lib"; "COUNTD"; "COUNTD lib";
      "ADDDOC"; "ADDDOC lib"; "ADDDOC two words\n<a/>";
      "ADDCHUNK"; "ADDCHUNK lib\n<a/>"; "ADDCHUNK lib 0 2\n<a/>";
      "ADDCHUNK lib -1 0\n<a/>"; "ADDCHUNK lib x 1\n<a/>";
      "ADDCHUNK two words 0 1\n<a/>";
      "ADOPT lib base-xml 2\nx"; "ADOPT lib nosuchfile 0\nx"; "ADOPT lib";
      "ADOPTABORT"; "ADOPTABORT two words";
      "DROPDOC"; "DROPDOC two words";
      "REBALANCE lib"; "REBALANCE lib -1"; "REBALANCE lib x";
    ]

let test_frame_io () =
  let r, w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr r and oc = Unix.out_channel_of_descr w in
  let payloads = [ "PING"; "OK line one\nline two\nline three"; "" ] in
  List.iter (P.write_frame oc) payloads;
  close_out oc;
  List.iter
    (fun expected ->
      match P.read_frame ic with
      | Some got -> Alcotest.(check string) "frame" expected got
      | None -> Alcotest.fail "premature EOF")
    payloads;
  Alcotest.(check bool) "clean EOF" true (P.read_frame ic = None);
  close_in ic

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      Alcotest.(check string)
        "response round-trips"
        (P.response_to_string resp)
        (P.response_to_string (P.parse_response (P.response_to_string resp))))
    [ P.Ok_ ""; P.Ok_ "v=1 total=2"; P.Err "boom"; P.Busy "queue full" ]

(* ------------------------------------------------------------------ *)
(* Basic sessions                                                      *)
(* ------------------------------------------------------------------ *)

let library = "<lib><book><title/><author/></book><book><title/></book></lib>"

let test_basic_session () =
  with_server [ ("lib", doc_of_string library) ] @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  (match C.request c P.Ping with
  | P.Ok_ "pong" -> ()
  | r -> Alcotest.failf "ping: %s" (P.response_to_string r));
  let docs = ok_body (C.request c P.Docs) in
  Alcotest.(check int) "one document" 1 (get_kv docs "docs");
  let body = ok_body (C.request c (P.Count "//title")) in
  Alcotest.(check int) "two titles" 2 (get_kv body "total");
  Alcotest.(check int) "count in lib" 2 (get_kv body "lib");
  let q = ok_body (C.request c (P.Query "//author")) in
  Alcotest.(check int) "one author" 1 (get_kv q "total");
  Alcotest.(check bool) "identifiers listed" true
    (String.length q > 0
    && String.length (String.concat "" (String.split_on_char ':' q)) < String.length q + 20
    && String.index_opt q ':' <> None);
  let chk = ok_body (C.request c (P.Check "lib")) in
  Alcotest.(check int) "checked against v1" 1 (get_kv chk "v");
  (match C.request c (P.Check "nope") with
  | P.Err _ -> ()
  | r -> Alcotest.failf "check nope: %s" (P.response_to_string r));
  let stats = ok_body (C.request c P.Stats) in
  Alcotest.(check bool) "stats has totals" true (C.kv_int stats "requests" <> None);
  Alcotest.(check int) "snapshot v1" 1 (get_kv stats "snapshot_version")

let test_update_and_query () =
  with_server [ ("lib", doc_of_string library) ] @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  let body =
    ok_body
      (C.request c
         (P.Update
            { doc = "lib";
              op = Wal.Insert { parent_rank = 0; pos = 0; tag = "title" } }))
  in
  Alcotest.(check int) "version bumped" 2 (get_kv body "v");
  Alcotest.(check int) "first journal record" 1 (get_kv body "seq");
  let count = ok_body (C.request c (P.Count "//title")) in
  Alcotest.(check int) "new title visible" 3 (get_kv count "total");
  Alcotest.(check int) "read from v2" 2 (get_kv count "v");
  (* delete it again: the new node is the first child of the root, rank 1 *)
  let body =
    ok_body
      (C.request c (P.Update { doc = "lib"; op = Wal.Delete { rank = 1 } }))
  in
  Alcotest.(check int) "version 3" 3 (get_kv body "v");
  let count = ok_body (C.request c (P.Count "//title")) in
  Alcotest.(check int) "back to two" 2 (get_kv count "total");
  (match
     C.request c
       (P.Update
          { doc = "lib"; op = Wal.Insert { parent_rank = 999; pos = 0; tag = "x" } })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "bad rank: %s" (P.response_to_string r));
  (match
     C.request c
       (P.Update { doc = "nope"; op = Wal.Delete { rank = 1 } })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "bad doc: %s" (P.response_to_string r))

(* ------------------------------------------------------------------ *)
(* Planner integration                                                 *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_explain_verb () =
  with_server [ ("lib", doc_of_string library) ] @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  let body = ok_body (C.request c (P.Explain "//book[author]/title")) in
  Alcotest.(check bool) "carries the version" true (contains body "v=1");
  Alcotest.(check bool) "names the doc" true (contains body "doc lib");
  Alcotest.(check bool) "states a strategy" true (contains body "strategy:");
  Alcotest.(check bool) "has the operator table" true (contains body "operator");
  Alcotest.(check bool) "reports the result" true (contains body "result:");
  (match C.request c (P.Explain "///[[[") with
  | P.Err _ -> ()
  | r -> Alcotest.failf "bad xpath: %s" (P.response_to_string r));
  (* EXPLAIN answers, with a reason, when the planner is disabled *)
  with_server ~planner:false [ ("lib", doc_of_string library) ]
  @@ fun cfg2 _t2 ->
  C.with_connection cfg2.Service.socket_path @@ fun c2 ->
  let body = ok_body (C.request c2 (P.Explain "//book/title")) in
  Alcotest.(check bool) "says why" true (contains body "explain unavailable")

(* Acceptance: QUERY and COUNT replies are byte-identical with the planner
   on and off, across strategies (chain, twig, pruned, fallback) and
   across an update. *)
let test_planner_replies_byte_identical () =
  let probes =
    [
      P.Query "//book/title"; P.Count "//book/title";
      P.Query "//book[author]/title"; P.Count "//book[author]/title";
      P.Query "//title/ancestor::book"; P.Count "//shelf/book";
      P.Query "//author | //title"; P.Count "//book[2]";
    ]
  in
  let run ~planner =
    with_server ~planner [ ("lib", doc_of_string library) ] @@ fun cfg _t ->
    C.with_connection cfg.Service.socket_path @@ fun c ->
    let before = List.map (fun r -> P.response_to_string (C.request c r)) probes in
    ignore
      (ok_body
         (C.request c
            (P.Update
               { doc = "lib";
                 op = Wal.Insert { parent_rank = 0; pos = 0; tag = "title" } })));
    let after = List.map (fun r -> P.response_to_string (C.request c r)) probes in
    before @ after
  in
  List.iteri
    (fun i (on, off) ->
      Alcotest.(check string) (Printf.sprintf "probe %d" i) off on)
    (List.combine (run ~planner:true) (run ~planner:false))

let test_invalid_requests_over_wire () =
  with_server [ ("lib", doc_of_string library) ] @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  (match C.request_raw c "NO SUCH VERB" with
  | P.Err _ -> ()
  | r -> Alcotest.failf "gibberish: %s" (P.response_to_string r));
  (match C.request c (P.Query "///[[[") with
  | P.Err _ -> ()
  | r -> Alcotest.failf "bad xpath: %s" (P.response_to_string r));
  (* the session survives both *)
  match C.request c P.Ping with
  | P.Ok_ "pong" -> ()
  | r -> Alcotest.failf "ping after errors: %s" (P.response_to_string r)

(* ------------------------------------------------------------------ *)
(* Snapshot isolation                                                  *)
(* ------------------------------------------------------------------ *)

(* The server starts with zero <m> elements at version 1 and every update
   inserts exactly one, so every consistent snapshot satisfies
   count(//m) = version - 1.  A torn read (a query observing a
   half-renumbered area) breaks either this equation or CHECK. *)
let test_snapshot_isolation () =
  with_server ~workers:4 ~max_queue:64 [ ("lib", doc_of_string library) ]
  @@ fun cfg _t ->
  let updates = 25 and readers = 4 and reads = 60 in
  let violations = ref [] and vmu = Mutex.create () in
  let record_violation msg =
    Mutex.lock vmu;
    violations := msg :: !violations;
    Mutex.unlock vmu
  in
  let writer =
    Thread.create
      (fun () ->
        C.with_connection cfg.Service.socket_path @@ fun c ->
        for i = 1 to updates do
          match
            C.request c
              (P.Update
                 { doc = "lib";
                   op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } })
          with
          | P.Ok_ body ->
            if get_kv body "v" <> i + 1 then
              record_violation
                (Printf.sprintf "update %d published version %d" i
                   (get_kv body "v"))
          | r ->
            record_violation
              (Printf.sprintf "update %d failed: %s" i (P.response_to_string r))
        done)
      ()
  in
  let reader _i =
    Thread.create
      (fun () ->
        C.with_connection cfg.Service.socket_path @@ fun c ->
        for _ = 1 to reads do
          (match C.request c (P.Count "//m") with
          | P.Ok_ body ->
            let v = get_kv body "v" and n = get_kv body "total" in
            if n <> v - 1 then
              record_violation
                (Printf.sprintf "torn read: version %d shows %d <m>" v n)
          | P.Busy _ -> ()
          | P.Err m -> record_violation ("reader error: " ^ m));
          match C.request c (P.Check "lib") with
          | P.Ok_ _ | P.Busy _ -> ()
          | P.Err m -> record_violation ("inconsistent snapshot: " ^ m)
        done)
      ()
  in
  let readers = List.init readers reader in
  Thread.join writer;
  List.iter Thread.join readers;
  (match !violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%d violation(s), e.g. %s" (List.length !violations) v);
  (* final state: all updates landed *)
  C.with_connection cfg.Service.socket_path @@ fun c ->
  let body = ok_body (C.request c (P.Count "//m")) in
  Alcotest.(check int) "all updates visible" updates (get_kv body "total");
  Alcotest.(check int) "final version" (updates + 1) (get_kv body "v")

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_busy_when_queue_full () =
  with_server ~workers:1 ~max_queue:1 [ ("lib", doc_of_string library) ]
  @@ fun cfg _t ->
  (* Occupy the single worker, then the single queue slot; the next
     data-path request must be rejected immediately. *)
  let hold ms = Thread.create (fun () ->
      C.with_connection cfg.Service.socket_path @@ fun c ->
      ignore (C.request c (P.Sleep ms)))
      ()
  in
  let t1 = hold 500 in
  Thread.delay 0.15;
  let t2 = hold 500 in
  Thread.delay 0.15;
  C.with_connection cfg.Service.socket_path @@ fun c ->
  (match C.request c (P.Count "//title") with
  | P.Busy _ -> ()
  | r -> Alcotest.failf "expected BUSY, got %s" (P.response_to_string r));
  (* control verbs stay responsive under overload *)
  (match C.request c P.Ping with
  | P.Ok_ "pong" -> ()
  | r -> Alcotest.failf "ping under load: %s" (P.response_to_string r));
  let stats = ok_body (C.request c P.Stats) in
  Alcotest.(check bool) "busy counted" true (get_kv stats "busy" >= 1);
  Thread.join t1;
  Thread.join t2

let test_deadline_expires_in_queue () =
  with_server ~workers:1 ~max_queue:8 ~deadline_ms:80
    [ ("lib", doc_of_string library) ]
  @@ fun cfg _t ->
  let t1 =
    Thread.create
      (fun () ->
        C.with_connection cfg.Service.socket_path @@ fun c ->
        ignore (C.request c (P.Sleep 400)))
      ()
  in
  Thread.delay 0.1;
  C.with_connection cfg.Service.socket_path @@ fun c ->
  (* queued behind a 400ms job with an 80ms deadline: BUSY, not late *)
  (match C.request c (P.Count "//title") with
  | P.Busy why ->
    Alcotest.(check bool) "deadline reason" true
      (String.length why >= 8 && String.sub why 0 8 = "deadline")
  | r -> Alcotest.failf "expected deadline BUSY, got %s" (P.response_to_string r));
  Thread.join t1

(* ------------------------------------------------------------------ *)
(* Shutdown and durability                                             *)
(* ------------------------------------------------------------------ *)

let test_shutdown_leaves_recoverable_wal () =
  let cfg_ref = ref None in
  let files = ref None in
  (with_server [ ("lib", doc_of_string library) ] @@ fun cfg t ->
   cfg_ref := Some cfg;
   files := Service.doc_files t "lib";
   C.with_connection cfg.Service.socket_path @@ fun c ->
   for i = 1 to 6 do
     ignore
       (ok_body
          (C.request c
             (P.Update
                { doc = "lib";
                  op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } })));
     ignore i
   done);
  (* server fully stopped here *)
  let xml, sidecar, wal = Option.get !files in
  let status = Wal.fsck ~xml ~sidecar ~wal () in
  Alcotest.(check bool)
    (Format.asprintf "fsck rates 0 or 1 (%a)" Wal.pp_status status)
    true
    (Wal.exit_code status <= 1);
  (* and recovery reproduces what clients were told *)
  let recovery = Wal.replay ~xml ~sidecar ~wal () in
  Alcotest.(check int) "all six updates journaled" 6
    (List.length recovery.Wal.replayed);
  let ms =
    List.filter (fun n -> Dom.tag n = "m") (R2.all_nodes recovery.Wal.r2)
  in
  Alcotest.(check int) "recovered the six <m>" 6 (List.length ms)

(* ------------------------------------------------------------------ *)
(* Group commit and incremental publication                            *)
(* ------------------------------------------------------------------ *)

module Snapshot = Rserver.Snapshot

let encoded_ids r2 =
  List.map
    (fun n -> Bytes.to_string (Ruid.Codec.encode_ruid2 (R2.id_of_node r2 n)))
    (R2.all_nodes r2)

(* Incremental publication (Snapshot.advance) must yield identifiers
   bit-identical to both the master that applied the same operations and
   a full sidecar round-trip (replace_doc) — across random documents,
   random scripts, and random batch partitions.  max_area_size 4 forces
   area overflows so the clone-and-replay path exercises splits, not just
   in-place renumbering. *)
let test_incremental_publication_equivalence () =
  for seed = 1 to 100 do
    let root =
      Rworkload.Shape.generate ~seed ~target:60
        (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 3 })
    in
    let master = R2.number ~max_area_size:4 root in
    let ops =
      Rworkload.Updates.script ~seed:(seed + 1000) ~ops:12 (R2.root master)
      |> List.map Rstorage.Crashsim.wal_op_of_update
    in
    let rng = Rworkload.Rng.create ((seed * 7) + 3) in
    let rec partition = function
      | [] -> []
      | ops ->
        let n = min (List.length ops) (1 + Rworkload.Rng.int rng 5) in
        let batch = List.filteri (fun i _ -> i < n) ops in
        let rest = List.filteri (fun i _ -> i >= n) ops in
        batch :: partition rest
    in
    let snap = ref (Snapshot.capture ~version:1 [ ("d", master) ]) in
    let version = ref 1 in
    List.iter
      (fun batch ->
        List.iter (fun op -> ignore (Wal.apply master op)) batch;
        incr version;
        let next, rebuilt =
          Snapshot.advance !snap ~version:!version [ (0, batch, !version) ]
        in
        if rebuilt < 1 then
          Alcotest.failf "seed %d: batch rebuilt no areas" seed;
        snap := next)
      (partition ops);
    let _, doc = Option.get (Snapshot.find !snap "d") in
    let inc = doc.Snapshot.r2 in
    R2.check inc;
    if encoded_ids inc <> encoded_ids master then
      Alcotest.failf "seed %d: incremental snapshot diverged from master" seed;
    let full =
      Snapshot.replace_doc !snap ~version:(!version + 1)
        ~doc_version:(!version + 1) ~doc_index:0 master
    in
    let _, fdoc = Option.get (Snapshot.find full "d") in
    if encoded_ids fdoc.Snapshot.r2 <> encoded_ids inc then
      Alcotest.failf "seed %d: incremental differs from full round-trip" seed
  done

(* The failure mode behind per-document cursors: a full-fallback
   publication of document A captures its master mid-queue and stamps the
   snapshot ahead of the global counter, while document B still has a
   queued update carrying a smaller version.  Filtered against the global
   stamp, B's update would be dropped forever (acked durable+visible, never
   published); filtered against B's own cursor it lands.  This pins the
   cursor plumbing: cursors are per document, shared documents keep theirs,
   and folding is independent of the global stamp. *)
let test_per_document_version_cursor () =
  let make seed =
    R2.number ~max_area_size:8
      (Rworkload.Shape.generate ~seed ~target:30
         (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }))
  in
  let a = make 7 and b = make 8 in
  let snap = Snapshot.capture ~version:1 [ ("a", a); ("b", b) ] in
  Alcotest.(check (list int))
    "cursors start at the capture version" [ 1; 1 ]
    (Array.to_list
       (Array.map (fun d -> d.Snapshot.doc_version) snap.Snapshot.docs));
  (* document A leaps ahead, as a full-fallback capture would *)
  ignore (Wal.apply a (Wal.Insert { parent_rank = 0; pos = 0; tag = "x" }));
  let snap =
    Snapshot.replace_doc snap ~version:10 ~doc_version:10 ~doc_index:0 a
  in
  Alcotest.(check int) "untouched document keeps its own cursor" 1
    snap.Snapshot.docs.(1).Snapshot.doc_version;
  (* document B folds an update whose version (6) trails the global stamp
     (10): against B's own cursor it is fresh (6 > 1) and must land *)
  let op = Wal.Insert { parent_rank = 0; pos = 0; tag = "y" } in
  ignore (Wal.apply b op);
  let snap, _ = Snapshot.advance snap ~version:11 [ (1, [ op ], 6) ] in
  Alcotest.(check int) "B's cursor advances to its own version" 6
    snap.Snapshot.docs.(1).Snapshot.doc_version;
  Alcotest.(check int) "A's cursor is untouched" 10
    snap.Snapshot.docs.(0).Snapshot.doc_version;
  let _, db = Option.get (Snapshot.find snap "b") in
  if encoded_ids db.Snapshot.r2 <> encoded_ids b then
    Alcotest.fail "B's trailing-version update was not folded"

let test_group_commit_service () =
  with_server ~workers:4 ~max_queue:64 [ ("lib", doc_of_string library) ]
  @@ fun cfg _t ->
  let mu = Mutex.create () in
  let seen = ref [] in
  let per_thread = 10 in
  let body () =
    C.with_connection cfg.Service.socket_path @@ fun c ->
    for _ = 1 to per_thread do
      let body =
        ok_body
          (C.request c
             (P.Update
                { doc = "lib";
                  op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } }))
      in
      let v = get_kv body "v" in
      (* every ack names the commit batch that made it durable *)
      if get_kv body "batch" < 1 then
        Alcotest.failf "ack %S lacks a positive batch=" body;
      Mutex.lock mu;
      seen := v :: !seen;
      Mutex.unlock mu
    done
  in
  let threads = Array.init 4 (fun _ -> Thread.create body ()) in
  Array.iter Thread.join threads;
  (* group commit must not lose, duplicate, or reorder version
     assignment: 40 updates over version-1 seed = exactly 2..41 *)
  Alcotest.(check (list int))
    "distinct consecutive versions"
    (List.init 40 (fun i -> i + 2))
    (List.sort compare !seen);
  C.with_connection cfg.Service.socket_path @@ fun c ->
  let count = ok_body (C.request c (P.Count "//m")) in
  Alcotest.(check int) "all forty inserts visible" 40 (get_kv count "total");
  let stats = ok_body (C.request c P.Stats) in
  Alcotest.(check int) "all records journaled" 40 (get_kv stats "wal_records");
  Alcotest.(check bool) "batches counted" true (get_kv stats "wal_batches" >= 1);
  Alcotest.(check bool) "publications counted" true
    (get_kv stats "publish_incremental" + get_kv stats "publish_full" >= 1)

let test_commit_pipelines_concurrent_docs () =
  (* W writers over D documents hashed across 4 commit pipelines: the
     global version sequence stays gapless, every document's journal
     sequence stays consecutive and version-ordered, acks stay batched,
     and after a clean stop every document's journal family fscks clean
     and recovers exactly what clients were told.  This is the
     whole-service contract the per-group split must not bend. *)
  let n_docs = 6 and writers = 12 and per_writer = 8 in
  let docs =
    List.init n_docs (fun i -> (Printf.sprintf "doc%d" i, doc_of_string library))
  in
  let files = ref [] in
  let mu = Mutex.create () in
  let seen : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  (with_server ~workers:(writers + 1) ~max_queue:256 ~commit_groups:4 docs
   @@ fun cfg t ->
   files :=
     List.map (fun (name, _) -> (name, Option.get (Service.doc_files t name)))
       docs;
   let body k () =
     let doc = Printf.sprintf "doc%d" (k mod n_docs) in
     C.with_connection cfg.Service.socket_path @@ fun c ->
     for _ = 1 to per_writer do
       let body =
         ok_body
           (C.request c
              (P.Update
                 { doc;
                   op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } }))
       in
       if get_kv body "batch" < 1 then
         Alcotest.failf "ack %S lacks a positive batch=" body;
       Mutex.lock mu;
       Hashtbl.add seen doc (get_kv body "seq", get_kv body "v");
       Mutex.unlock mu
     done
   in
   let threads = Array.init writers (fun k -> Thread.create (body k) ()) in
   Array.iter Thread.join threads;
   let total = writers * per_writer in
   (* Global versions: distinct and gapless across all pipelines — the
      shared counter leaves no holes even though four leaders interleave. *)
   let versions =
     List.sort compare (Hashtbl.fold (fun _ (_, v) acc -> v :: acc) seen [])
   in
   Alcotest.(check (list int))
     "globally distinct consecutive versions"
     (List.init total (fun i -> i + 2))
     versions;
   (* Per document: journal sequences are exactly 1..N, and versions
      increase with sequence (per-document ordering is untouched). *)
   let per_doc = total / n_docs in
   List.iter
     (fun (name, _) ->
       let stream =
         List.sort compare (Hashtbl.find_all seen name)
       in
       Alcotest.(check (list int))
         (name ^ ": consecutive journal sequence")
         (List.init per_doc (fun i -> i + 1))
         (List.map fst stream);
       ignore
         (List.fold_left
            (fun prev (_, v) ->
              if v <= prev then
                Alcotest.failf "%s: version %d not above %d" name v prev;
              v)
            0 stream))
     !files;
   C.with_connection cfg.Service.socket_path @@ fun c ->
   (* Reads see everything; STATS aggregates across groups and details
      each pipeline. *)
   let count = ok_body (C.request c (P.Count "//m")) in
   Alcotest.(check int) "all inserts visible" total (get_kv count "total");
   let stats = ok_body (C.request c P.Stats) in
   Alcotest.(check int) "all records journaled (aggregated)" total
     (get_kv stats "wal_records");
   Alcotest.(check int) "four pipelines reported" 4
     (get_kv stats "commit_groups");
   let group_lines =
     List.filter
       (fun l -> String.length l > 6 && String.sub l 0 6 = "group=")
       (String.split_on_char '\n' stats)
   in
   Alcotest.(check int) "one detail line per group" 4
     (List.length group_lines);
   Alcotest.(check bool) "handoffs counted" true
     (get_kv stats "leader_handoffs" >= 1));
  (* Server stopped: every journal family recovers what clients saw. *)
  List.iter
    (fun (name, (xml, sidecar, wal)) ->
      let status = Wal.fsck ~xml ~sidecar ~wal () in
      Alcotest.(check int)
        (Format.asprintf "%s: fsck clean after stop (%a)" name Wal.pp_status
           status)
        0 (Wal.exit_code status);
      let recovery = Wal.replay ~xml ~sidecar ~wal () in
      let ms =
        List.filter (fun n -> Dom.tag n = "m") (R2.all_nodes recovery.Wal.r2)
      in
      Alcotest.(check int)
        (name ^ ": recovered every acked insert")
        (writers * per_writer / n_docs)
        (List.length ms))
    !files

let test_segment_rotation_service () =
  let files = ref None in
  (with_server ~wal_segment_bytes:256 [ ("lib", doc_of_string library) ]
   @@ fun cfg t ->
   files := Service.doc_files t "lib";
   C.with_connection cfg.Service.socket_path @@ fun c ->
   for _ = 1 to 30 do
     ignore
       (ok_body
          (C.request c
             (P.Update
                { doc = "lib";
                  op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } })))
   done;
   let stats = ok_body (C.request c P.Stats) in
   Alcotest.(check bool) "rotated at least once" true
     (get_kv stats "wal_rotations" >= 1));
  (* server fully stopped: the checkpointed journal chain must recover
     everything clients were told, same as the unrotated case *)
  let xml, sidecar, wal = Option.get !files in
  let status = Wal.fsck ~xml ~sidecar ~wal () in
  Alcotest.(check bool)
    (Format.asprintf "fsck passes after rotation (%a)" Wal.pp_status status)
    true
    (Wal.exit_code status <= 1);
  let recovery = Wal.replay ~xml ~sidecar ~wal () in
  let ms =
    List.filter (fun n -> Dom.tag n = "m") (R2.all_nodes recovery.Wal.r2)
  in
  Alcotest.(check int) "recovered all thirty <m>" 30 (List.length ms)

let test_shutdown_verb () =
  let cfg =
    {
      Service.socket_path = sock_path ();
      data_dir = temp_dir ();
      workers = 2;
      max_queue = 8;
      deadline_ms = 0;
      max_area_size = 8;
      max_depth = 10_000;
      domains = 0;
      cache_mb = 0;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups = 0;
      wal_segment_bytes = 0;
      planner = true;
      plan_cache = 256;
      epoch = 1;
    }
  in
  let t = Service.start cfg [ ("lib", doc_of_string library) ] in
  (C.with_connection cfg.Service.socket_path @@ fun c ->
   match C.request c P.Shutdown with
   | P.Ok_ _ -> ()
   | r -> Alcotest.failf "shutdown: %s" (P.response_to_string r));
  Service.wait t;
  Alcotest.(check bool) "socket removed" false
    (Sys.file_exists cfg.Service.socket_path);
  (* idempotent *)
  Service.stop t

let test_config_validation () =
  let base =
    Service.default_config ~socket_path:(sock_path ()) ~data_dir:(temp_dir ()) ()
  in
  let bad cfg = match Service.validate_config cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "config accepted"
  in
  bad { base with Service.workers = 0 };
  bad { base with Service.max_queue = -1 };
  bad { base with Service.deadline_ms = -1 };
  bad { base with Service.max_area_size = 1 };
  bad { base with Service.domains = -1 };
  bad { base with Service.cache_mb = -1 };
  bad { base with Service.commit_groups = -1 };
  bad { base with Service.epoch = 0 };
  (* commit_groups = 0 means "one pipeline per read domain", min 1 *)
  Alcotest.(check int) "auto commit groups" 1
    (Service.resolved_commit_groups { base with Service.commit_groups = 0 });
  Alcotest.(check int) "auto groups follow domains" 4
    (Service.resolved_commit_groups
       { base with Service.commit_groups = 0; domains = 4 });
  Alcotest.(check int) "explicit commit groups" 3
    (Service.resolved_commit_groups
       { base with Service.commit_groups = 3; domains = 8 });
  (* max_queue = 0 means "4 x the larger pool" *)
  Alcotest.(check int) "auto queue bound" 16
    (Service.resolved_max_queue { base with Service.max_queue = 0; workers = 4 });
  Alcotest.(check int) "auto bound follows domains" 32
    (Service.resolved_max_queue
       { base with Service.max_queue = 0; workers = 4; domains = 8 });
  bad { base with Service.socket_path = "" };
  bad { base with Service.socket_path = String.make 200 'x' };
  (match Service.validate_config base with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default config rejected: %s" e);
  (* bad document names are rejected at start *)
  Alcotest.check_raises "dotfile name"
    (Invalid_argument "Service.start: bad document name \"../evil\"")
    (fun () ->
      ignore (Service.start base [ ("../evil", doc_of_string library) ]))

(* ------------------------------------------------------------------ *)
(* Scheduler and thread-safe counters                                  *)
(* ------------------------------------------------------------------ *)

let test_scheduler_bounds () =
  let sched = Rserver.Scheduler.create ~workers:1 ~max_queue:2 () in
  let release = Mutex.create () and released = Condition.create () in
  let go = ref false in
  let blocker () =
    Mutex.lock release;
    while not !go do
      Condition.wait released release
    done;
    Mutex.unlock release
  in
  Alcotest.(check bool) "worker job admitted" true
    (Rserver.Scheduler.submit sched blocker);
  Thread.delay 0.05;
  (* worker busy *)
  Alcotest.(check bool) "slot 1" true (Rserver.Scheduler.submit sched blocker);
  Alcotest.(check bool) "slot 2" true (Rserver.Scheduler.submit sched blocker);
  Alcotest.(check bool) "queue full" false
    (Rserver.Scheduler.submit sched (fun () -> ()));
  Alcotest.(check int) "depth" 2 (Rserver.Scheduler.queue_depth sched);
  Mutex.lock release;
  go := true;
  Condition.broadcast released;
  Mutex.unlock release;
  Rserver.Scheduler.shutdown sched;
  Alcotest.(check int) "drained" 0 (Rserver.Scheduler.queue_depth sched);
  Alcotest.(check bool) "rejected after shutdown" false
    (Rserver.Scheduler.submit sched (fun () -> ()))

let test_io_stats_concurrent () =
  let stats = Rstorage.Io_stats.create () in
  let per_thread = 5000 in
  let threads =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              Rstorage.Io_stats.record_read stats;
              Rstorage.Io_stats.record_hit stats;
              Rstorage.Io_stats.record_write stats
            done)
          ())
  in
  List.iter Thread.join threads;
  let s = Rstorage.Io_stats.snapshot stats in
  Alcotest.(check int) "reads" (8 * per_thread) s.Rstorage.Io_stats.page_reads;
  Alcotest.(check int) "writes" (8 * per_thread) s.Rstorage.Io_stats.page_writes;
  Alcotest.(check int) "hits" (8 * per_thread) s.Rstorage.Io_stats.hits;
  let before = Rstorage.Io_stats.snapshot stats in
  Rstorage.Io_stats.record_read stats;
  let d =
    Rstorage.Io_stats.diff ~after:(Rstorage.Io_stats.snapshot stats) ~before
  in
  Alcotest.(check int) "diff isolates the delta" 1 d.Rstorage.Io_stats.page_reads;
  Rstorage.Io_stats.reset stats;
  Alcotest.(check int) "reset" 0 (Rstorage.Io_stats.page_reads stats)

let test_buffer_pool_concurrent () =
  let stats = Rstorage.Io_stats.create () in
  let pool = Rstorage.Buffer_pool.create ~capacity:16 ~stats in
  let per_thread = 2000 in
  let threads =
    List.init 6 (fun i ->
        Thread.create
          (fun () ->
            for k = 1 to per_thread do
              Rstorage.Buffer_pool.touch pool ((i * 7 + k) mod 64)
            done)
          ())
  in
  List.iter Thread.join threads;
  let s = Rstorage.Io_stats.snapshot stats in
  Alcotest.(check int) "every touch is a hit or a read" (6 * per_thread)
    Rstorage.Io_stats.(s.page_reads + s.hits)

(* A peer that hangs up mid-reply must cost exactly one session (and one
   error counter tick), never the process: the server writes the reply
   into a closed socket, takes EPIPE/ECONNRESET, and moves on. *)
let test_peer_drop_mid_reply () =
  let doc = doc_of_string "<lib><a/><b/></lib>" in
  with_server [ ("lib", doc) ] @@ fun cfg _t ->
  let session_errors () =
    C.with_connection cfg.Service.socket_path @@ fun c ->
    get_kv (ok_body (C.request c P.Stats)) "session_errors"
  in
  let before = session_errors () in
  (* park a request on a worker, then vanish before the reply lands *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX cfg.Service.socket_path);
  let oc = Unix.out_channel_of_descr fd in
  P.write_frame oc (P.request_to_string (P.Sleep 60));
  Unix.close fd;
  (* the reply write happens ~60ms from now; poll for the counter *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait () =
    if session_errors () > before then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "peer drop was never counted as a session error"
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ();
  (* and the server is entirely unharmed *)
  C.with_connection cfg.Service.socket_path @@ fun c ->
  Alcotest.(check string) "server still serves" "pong"
    (ok_body (C.request c P.Ping))

(* ------------------------------------------------------------------ *)
(* Streaming ingest: ADDCHUNK spooling and the depth budget             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let test_add_chunk () =
  with_server [] @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  let xml =
    "<lib>"
    ^ String.concat ""
        (List.init 30 (fun i -> Printf.sprintf "<book n='%d'><t/></book>" i))
    ^ "</lib>"
  in
  (* the same bytes one-shot and chunked must persist identical artifacts *)
  let one = ok_body (C.request c (P.Add_doc { doc = "one"; xml })) in
  let len = String.length xml in
  let rec ship off =
    let n = min 17 (len - off) in
    let last = off + n >= len in
    let body =
      ok_body
        (C.request c
           (P.Add_chunk
              { doc = "two"; off; last; bytes = String.sub xml off n }))
    in
    if last then body
    else begin
      Alcotest.(check int) "intermediate reply advances the offset" (off + n)
        (get_kv body "off");
      ship (off + n)
    end
  in
  let two = ship 0 in
  Alcotest.(check int) "same node count"
    (get_kv one "nodes") (get_kv two "nodes");
  let artifact name ext =
    read_file (Filename.concat cfg.Service.data_dir (name ^ ext))
  in
  Alcotest.(check string) "xml artifacts byte-identical"
    (artifact "one" ".xml") (artifact "two" ".xml");
  Alcotest.(check string) "ruid sidecars byte-identical"
    (artifact "one" ".ruid") (artifact "two" ".ruid");
  (* both serve identical query answers *)
  let count doc =
    get_kv (ok_body (C.request c (P.Count_doc { doc; xpath = "//book" })))
      "total"
  in
  Alcotest.(check int) "query answers match" (count "one") (count "two");
  (* an offset mismatch discards the spool; restarting from 0 succeeds *)
  ignore
    (ok_body
       (C.request c
          (P.Add_chunk { doc = "three"; off = 0; last = false; bytes = "<a>" })));
  (match
     C.request c
       (P.Add_chunk { doc = "three"; off = 999; last = false; bytes = "x" })
   with
  | P.Err msg ->
    Alcotest.(check bool) "names the mismatch" true
      (String.length msg > 0)
  | r -> Alcotest.failf "offset mismatch accepted: %s" (P.response_to_string r));
  let three =
    ok_body
      (C.request c
         (P.Add_chunk { doc = "three"; off = 0; last = true; bytes = "<a/>" }))
  in
  Alcotest.(check int) "restart from zero ingested cleanly" 2
    (get_kv three "nodes");
  (* a duplicate name is rejected at commit, and malformed spools error *)
  (match
     C.request c
       (P.Add_chunk { doc = "one"; off = 0; last = true; bytes = "<z/>" })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "duplicate accepted: %s" (P.response_to_string r));
  (match
     C.request c
       (P.Add_chunk { doc = "bad"; off = 0; last = true; bytes = "<a><b>" })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "malformed spool accepted: %s" (P.response_to_string r));
  (* ... and leaves no document behind *)
  match C.request c (P.Count_doc { doc = "bad"; xpath = "//*" }) with
  | P.Err _ -> ()
  | r -> Alcotest.failf "failed spool left a document: %s" (P.response_to_string r)

let test_add_doc_file_chunks () =
  (* a document beyond the frame cap ships as an ADDCHUNK sequence and
     serves like any other — the client never holds more than one chunk *)
  with_server [] @@ fun cfg _t ->
  let leaves = 90_000 in
  let path = Filename.temp_file "ruid-big" ".xml" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "<r>";
  for i = 1 to leaves do
    output_string oc (Printf.sprintf "<x i='%d'/>" i)
  done;
  output_string oc "</r>";
  close_out oc;
  Alcotest.(check bool) "test file actually exceeds the frame cap" true
    ((Unix.stat path).Unix.st_size > P.max_frame);
  C.with_connection cfg.Service.socket_path @@ fun c ->
  let body = ok_body (C.add_doc_file c ~doc:"big" path) in
  Alcotest.(check int) "all nodes built" (leaves + 2) (get_kv body "nodes");
  let total =
    get_kv
      (ok_body (C.request c (P.Count_doc { doc = "big"; xpath = "//x" })))
      "total"
  in
  Alcotest.(check int) "queryable after chunked ingest" leaves total

let test_adddoc_depth_budget () =
  (* the server's --max-depth holds on the streaming ingest path *)
  let deep k =
    String.concat "" (List.init k (fun _ -> "<d>"))
    ^ String.concat "" (List.init k (fun _ -> "</d>"))
  in
  with_server ~max_depth:5 [] @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  ignore
    (ok_body (C.request c (P.Add_doc { doc = "ok5"; xml = deep 5 })));
  match C.request c (P.Add_doc { doc = "deep6"; xml = deep 6 }) with
  | P.Err msg ->
    Alcotest.(check bool) "mentions the depth budget" true
      (String.length msg > 0)
  | r -> Alcotest.failf "over-deep document accepted: %s" (P.response_to_string r)

let test_metrics_registry () =
  let m = Rserver.Metrics.create () in
  for i = 1 to 100 do
    Rserver.Metrics.record m ~verb:"QUERY" ~outcome:`Ok
      ~latency_ns:(float_of_int (i * 1000))
  done;
  Rserver.Metrics.record m ~verb:"COUNT" ~outcome:`Busy ~latency_ns:50.;
  Rserver.Metrics.record m ~verb:"COUNT" ~outcome:`Err ~latency_ns:70.;
  let s = Rserver.Metrics.summary m in
  Alcotest.(check int) "requests" 102 s.Rserver.Metrics.requests;
  Alcotest.(check int) "busy" 1 s.Rserver.Metrics.busy;
  Alcotest.(check bool) "p50 <= p95 <= p99" true
    (s.Rserver.Metrics.p50_ns <= s.Rserver.Metrics.p95_ns
    && s.Rserver.Metrics.p95_ns <= s.Rserver.Metrics.p99_ns);
  Alcotest.(check bool) "p99 within max" true
    (s.Rserver.Metrics.p99_ns <= s.Rserver.Metrics.max_ns);
  Alcotest.(check bool) "p50 log-accurate" true
    (s.Rserver.Metrics.p50_ns >= 25_000. && s.Rserver.Metrics.p50_ns <= 131_072.);
  let verbs = Rserver.Metrics.by_verb m in
  Alcotest.(check int) "two verbs" 2 (List.length verbs);
  Rserver.Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Rserver.Metrics.summary m).Rserver.Metrics.requests

let suite =
  [
    Alcotest.test_case "protocol: request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol: rejects" `Quick test_request_rejects;
    Alcotest.test_case "protocol: framing" `Quick test_frame_io;
    Alcotest.test_case "protocol: response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "session: basics" `Quick test_basic_session;
    Alcotest.test_case "session: update + query" `Quick test_update_and_query;
    Alcotest.test_case "session: survives bad input" `Quick test_invalid_requests_over_wire;
    Alcotest.test_case "EXPLAIN verb" `Quick test_explain_verb;
    Alcotest.test_case "planner on/off: byte-identical replies" `Quick
      test_planner_replies_byte_identical;
    Alcotest.test_case "snapshot isolation under writer" `Quick test_snapshot_isolation;
    Alcotest.test_case "BUSY when queue full" `Quick test_busy_when_queue_full;
    Alcotest.test_case "deadline expires in queue" `Quick test_deadline_expires_in_queue;
    Alcotest.test_case "shutdown leaves recoverable WAL" `Quick test_shutdown_leaves_recoverable_wal;
    Alcotest.test_case "incremental publication = full round-trip (100 seeds)" `Quick test_incremental_publication_equivalence;
    Alcotest.test_case "per-document publication cursors" `Quick test_per_document_version_cursor;
    Alcotest.test_case "group commit: 4 writers, atomic batched acks" `Quick test_group_commit_service;
    Alcotest.test_case "commit pipelines: 12 writers x 6 docs x 4 groups" `Quick
      test_commit_pipelines_concurrent_docs;
    Alcotest.test_case "segment rotation under live service" `Quick test_segment_rotation_service;
    Alcotest.test_case "SHUTDOWN verb" `Quick test_shutdown_verb;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "scheduler bounds + drain" `Quick test_scheduler_bounds;
    Alcotest.test_case "io_stats: concurrent counters" `Quick test_io_stats_concurrent;
    Alcotest.test_case "buffer pool: concurrent touches" `Quick test_buffer_pool_concurrent;
    Alcotest.test_case "peer drop mid-reply: one session error, server lives"
      `Quick test_peer_drop_mid_reply;
    Alcotest.test_case "ADDCHUNK: spooled ingest == one-shot ADDDOC" `Quick
      test_add_chunk;
    Alcotest.test_case "add_doc_file: oversized document ships chunked" `Quick
      test_add_doc_file_chunks;
    Alcotest.test_case "ADDDOC honors the nesting depth budget" `Quick
      test_adddoc_depth_budget;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
  ]
