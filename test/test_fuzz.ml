(* Failure injection: decoders and parsers must reject garbage with their
   documented exceptions, never crash or loop. *)

module Rng = Rworkload.Rng

let random_bytes rng n =
  Bytes.init n (fun _ -> Char.chr (Rng.int rng 256))

let test_parser_fuzz () =
  let rng = Rng.create 1 in
  for _ = 1 to 500 do
    let src = Bytes.to_string (random_bytes rng (Rng.int_in rng 0 80)) in
    match Rxml.Parser.parse_string src with
    | _ -> () (* the rare accidental well-formed input is fine *)
    | exception Rxml.Parser.Parse_error _ -> ()
  done

let test_parser_mutation_fuzz () =
  (* Mutate a valid document: every outcome must be parse or clean error. *)
  let base = Rxml.Serializer.to_string (Rworkload.Xmark.generate ~seed:2 ~scale:0.05) in
  let rng = Rng.create 3 in
  for _ = 1 to 300 do
    let b = Bytes.of_string base in
    for _ = 1 to Rng.int_in rng 1 4 do
      Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256))
    done;
    match Rxml.Parser.parse_string (Bytes.to_string b) with
    | _ -> ()
    | exception Rxml.Parser.Parse_error _ -> ()
  done

let test_sax_fuzz () =
  let rng = Rng.create 5 in
  for _ = 1 to 500 do
    let src = Bytes.to_string (random_bytes rng (Rng.int_in rng 0 60)) in
    match Rxml.Sax.iter src ~f:(fun _ -> ()) with
    | () -> ()
    | exception Rxml.Parser.Parse_error _ -> ()
  done

let test_codec_fuzz () =
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    let b = random_bytes rng (Rng.int_in rng 0 20) in
    (match Ruid.Codec.decode_ruid2 b with
    | _ -> ()
    | exception Invalid_argument _ -> ());
    match Ruid.Codec.decode_mruid b with
    | _ -> ()
    | exception Invalid_argument _ -> ()
  done

let test_sidecar_fuzz () =
  let root =
    Rworkload.Shape.generate ~seed:9 ~target:50
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 3 })
  in
  let rng = Rng.create 11 in
  (* Random garbage. *)
  for _ = 1 to 200 do
    let b = random_bytes rng (Rng.int_in rng 0 40) in
    match Ruid.Persist.sidecar_of_bytes root b with
    | _ -> ()
    | exception Invalid_argument _ -> ()
  done;
  (* Mutated valid sidecars. *)
  let r2 = Ruid.Ruid2.number ~max_area_size:8 root in
  let valid = Ruid.Persist.sidecar_to_bytes r2 in
  for _ = 1 to 200 do
    let b = Bytes.copy valid in
    Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256));
    match Ruid.Persist.sidecar_of_bytes (Rxml.Dom.clone root) b with
    | _ -> () (* mutation may land in padding-insensitive spots *)
    | exception Invalid_argument _ -> ()
    | exception Not_found -> Alcotest.fail "leaked Not_found"
  done

(* QCheck-driven hardening: on ANY byte string the parser returns a tree or
   raises its one documented exception — Failure / Invalid_argument /
   Stack_overflow all fail the property (qcheck reports unexpected
   exceptions as failures). *)
let prop_parser_total =
  Util.qtest ~count:500 "parser total on arbitrary byte strings"
    QCheck.(string_gen_of_size Gen.(0 -- 300) Gen.char)
    (fun src ->
      match Rxml.Parser.parse_string src with
      | _ -> true
      | exception Rxml.Parser.Parse_error _ -> true)

let prop_parser_mutations_total =
  let base =
    Rxml.Serializer.to_string (Rworkload.Xmark.generate ~seed:21 ~scale:0.05)
  in
  Util.qtest ~count:300 "parser total on mutated valid documents"
    QCheck.(small_list (pair small_nat (map Char.chr (int_range 0 255))))
    (fun muts ->
      let b = Bytes.of_string base in
      List.iter
        (fun (pos, c) -> Bytes.set b (pos mod Bytes.length b) c)
        muts;
      match Rxml.Parser.parse_string (Bytes.to_string b) with
      | _ -> true
      | exception Rxml.Parser.Parse_error _ -> true)

let test_parser_depth_bomb () =
  (* A million-deep open-tag chain must hit the depth budget with a clean
     Parse_error, never Stack_overflow. *)
  let bomb = String.concat "" (List.init 200_000 (fun _ -> "<a>")) in
  (match Rxml.Parser.parse_string bomb with
  | _ -> Alcotest.fail "depth bomb accepted"
  | exception Rxml.Parser.Parse_error e ->
    Alcotest.(check bool) "names the depth limit" true
      (String.length e.Rxml.Parser.message > 0));
  (* And a balanced document well inside the budget still parses. *)
  let deep n =
    String.concat ""
      (List.init n (fun _ -> "<a>") @ [ "x" ] @ List.init n (fun _ -> "</a>"))
  in
  let doc = Rxml.Parser.parse_string (deep 5_000) in
  Alcotest.(check int) "deep but legal document parses" (5_000 + 2)
    (Rxml.Dom.size doc);
  (* An explicit budget is honoured. *)
  match Rxml.Parser.parse_string ~max_depth:10 (deep 11) with
  | _ -> Alcotest.fail "max_depth not enforced"
  | exception Rxml.Parser.Parse_error _ -> ()

let test_xpath_fuzz () =
  let rng = Rng.create 13 in
  let chars = "ab/[]@*().|'\"<>=0123 :" in
  for _ = 1 to 800 do
    let n = Rng.int_in rng 1 25 in
    let src = String.init n (fun _ -> chars.[Rng.int rng (String.length chars)]) in
    match Rxpath.Xparser.parse_union src with
    | _ -> ()
    | exception Rxpath.Xparser.Syntax_error _ -> ()
  done

let suite =
  [
    Alcotest.test_case "parser random bytes" `Quick test_parser_fuzz;
    Alcotest.test_case "parser mutations" `Quick test_parser_mutation_fuzz;
    prop_parser_total;
    prop_parser_mutations_total;
    Alcotest.test_case "parser depth bomb" `Quick test_parser_depth_bomb;
    Alcotest.test_case "sax random bytes" `Quick test_sax_fuzz;
    Alcotest.test_case "codec random bytes" `Quick test_codec_fuzz;
    Alcotest.test_case "sidecar garbage and mutations" `Quick test_sidecar_fuzz;
    Alcotest.test_case "xpath random strings" `Quick test_xpath_fuzz;
  ]
