(* The fault injector itself: schedules must be deterministic and each
   fault kind must produce exactly the failure shape recovery code is
   written against. *)

module Vfs = Ruid.Vfs
module Fault = Rstorage.Fault

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_determinism () =
  let run () =
    let p =
      Fault.plan ~seed:7 ~p_short_write:0.4 ~p_bit_flip:0.4 ~p_transient:0.3 ()
    in
    let v = Fault.wrap p Vfs.real in
    let path = tmp "fault_det.bin" in
    for i = 1 to 40 do
      (try v.Vfs.store path (Bytes.make (10 + i) 'x')
       with Vfs.Crash _ | Vfs.Transient _ -> ());
      try ignore (v.Vfs.load path) with _ -> ()
    done;
    Fault.events p
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "schedule produced events" true (a <> []);
  Alcotest.(check bool) "same seed, identical schedule" true (a = b)

let test_short_write () =
  let p = Fault.plan ~seed:1 ~p_short_write:1.0 () in
  let v = Fault.wrap p Vfs.real in
  let path = tmp "fault_short.bin" in
  let data = Bytes.init 64 Char.chr in
  (match v.Vfs.store path data with
  | () -> Alcotest.fail "expected a crash after the short write"
  | exception Vfs.Crash _ -> ());
  match Fault.events p with
  | [ Fault.Short_write { kept; intended; _ } ] ->
    Alcotest.(check int) "intended the full buffer" 64 intended;
    Alcotest.(check bool) "kept strictly less" true (kept < intended);
    let on_disk = Vfs.real.Vfs.load path in
    Alcotest.(check int) "file holds exactly the kept prefix" kept
      (Bytes.length on_disk);
    Alcotest.(check bool) "prefix bytes intact" true
      (Bytes.equal on_disk (Bytes.sub data 0 kept))
  | _ -> Alcotest.fail "expected exactly one short-write event"

let count_diff_bits a b =
  let n = ref 0 in
  Bytes.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code (Bytes.get b i) in
      for bit = 0 to 7 do
        if x land (1 lsl bit) <> 0 then incr n
      done)
    a;
  !n

let test_bit_flip () =
  let path = tmp "fault_flip.bin" in
  let data = Bytes.make 32 '\x00' in
  Vfs.real.Vfs.store path data;
  let p = Fault.plan ~seed:2 ~p_bit_flip:1.0 () in
  let v = Fault.wrap p Vfs.real in
  let got = v.Vfs.load path in
  Alcotest.(check int) "exactly one bit flipped" 1 (count_diff_bits got data);
  (match Fault.events p with
  | [ Fault.Bit_flip _ ] -> ()
  | _ -> Alcotest.fail "expected exactly one bit-flip event");
  (* The file itself was not modified — corruption is on the read path. *)
  Alcotest.(check bool) "disk image untouched" true
    (Bytes.equal data (Vfs.real.Vfs.load path));
  (* Directed flip modifies the disk image at the named bit. *)
  Fault.flip_bit path ~bit:9;
  let b = Vfs.real.Vfs.load path in
  Alcotest.(check int) "bit 9 is byte 1, mask 0x02" 2
    (Char.code (Bytes.get b 1));
  Alcotest.check_raises "out-of-range bit rejected"
    (Invalid_argument "Fault.flip_bit: bit out of range") (fun () ->
      Fault.flip_bit path ~bit:(32 * 8))

let test_transient_bursts_survive_retries () =
  let p = Fault.plan ~seed:3 ~p_transient:0.3 ~transient_burst:2 () in
  let v = Fault.wrap p Vfs.real in
  let path = tmp "fault_transient.bin" in
  (* Every write lands once the retry budget exceeds the burst. *)
  for i = 1 to 25 do
    let data = Bytes.make 8 (Char.chr (Char.code 'a' + (i mod 26))) in
    Vfs.with_retries ~attempts:6 ~backoff:1e-6 (fun () ->
        v.Vfs.store path data);
    Alcotest.(check bool) "write landed despite transients" true
      (Bytes.equal data (Vfs.real.Vfs.load path))
  done;
  let transients =
    List.filter
      (function Fault.Transient_error _ -> true | _ -> false)
      (Fault.events p)
  in
  Alcotest.(check bool) "schedule injected transients" true (transients <> []);
  (* Without retries, failures arrive in bursts of at least [transient_burst]
     consecutive calls. *)
  Fault.clear_events p;
  let runs = ref [] and streak = ref 0 in
  for _ = 1 to 60 do
    match v.Vfs.store path (Bytes.make 4 'z') with
    | () ->
      if !streak > 0 then runs := !streak :: !runs;
      streak := 0
    | exception Vfs.Transient _ -> incr streak
  done;
  Alcotest.(check bool) "bursts at least transient_burst long" true
    (!runs <> [] && List.for_all (fun r -> r >= 2) !runs)

let test_with_retries_gives_up () =
  let calls = ref 0 in
  match
    Vfs.with_retries ~attempts:3 ~backoff:1e-6 (fun () ->
        incr calls;
        raise (Vfs.Transient "always"))
  with
  | () -> Alcotest.fail "expected the transient to escape"
  | exception Vfs.Transient _ ->
    Alcotest.(check int) "tried exactly [attempts] times" 3 !calls

let suite =
  [
    Alcotest.test_case "deterministic schedules" `Quick test_determinism;
    Alcotest.test_case "short write keeps a prefix" `Quick test_short_write;
    Alcotest.test_case "bit flip on the read path" `Quick test_bit_flip;
    Alcotest.test_case "transient bursts vs retries" `Quick
      test_transient_bursts_survive_retries;
    Alcotest.test_case "retry budget exhausts" `Quick test_with_retries_gives_up;
  ]
