module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Bt = Rstorage.Btree
module Bp = Rstorage.Buffer_pool
module Io = Rstorage.Io_stats
module Ns = Rstorage.Node_store
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng

(* ------------------------------------------------------------------ *)
(* B+tree                                                              *)
(* ------------------------------------------------------------------ *)

let test_btree_basics () =
  let t = Bt.create ~order:4 () in
  List.iter (fun k -> Bt.insert t k (k * 10)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  Bt.check_invariants t;
  Alcotest.(check int) "length" 10 (Bt.length t);
  Alcotest.(check (option int)) "find 7" (Some 70) (Bt.find t 7);
  Alcotest.(check (option int)) "find missing" None (Bt.find t 42);
  Bt.insert t 7 700;
  Alcotest.(check (option int)) "replace" (Some 700) (Bt.find t 7);
  Alcotest.(check int) "replace keeps length" 10 (Bt.length t);
  Alcotest.(check bool) "splits happened" true (Bt.height t > 1)

let test_btree_range () =
  let t = Bt.create ~order:4 () in
  for k = 0 to 99 do
    Bt.insert t (k * 2) k
  done;
  Bt.check_invariants t;
  let r = Bt.range t ~lo:10 ~hi:20 in
  Alcotest.(check (list int)) "range keys" [ 10; 12; 14; 16; 18; 20 ]
    (List.map fst r);
  Alcotest.(check (list int)) "empty range" []
    (List.map fst (Bt.range t ~lo:201 ~hi:300));
  Alcotest.(check int) "full range" 100 (List.length (Bt.range t ~lo:min_int ~hi:max_int))

let test_btree_delete () =
  let t = Bt.create ~order:4 () in
  for k = 0 to 50 do
    Bt.insert t k k
  done;
  Alcotest.(check bool) "delete present" true (Bt.delete t 25);
  Alcotest.(check bool) "delete absent" false (Bt.delete t 25);
  Alcotest.(check (option int)) "gone" None (Bt.find t 25);
  Alcotest.(check int) "length dropped" 50 (Bt.length t);
  Bt.check_invariants t

let test_btree_iter_sorted () =
  let t = Bt.create ~order:6 () in
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    let k = Rng.int rng 10_000 in
    Bt.insert t k k
  done;
  let prev = ref min_int in
  Bt.iter
    (fun k _ ->
      Alcotest.(check bool) "sorted" true (k > !prev);
      prev := k)
    t;
  Bt.check_invariants t

let prop_btree_model =
  Util.qtest ~count:40 "btree matches a sorted-map model"
    QCheck.(small_list (pair (int_bound 1000) (int_bound 1000)))
    (fun ops ->
      let t = Bt.create ~order:4 () in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Bt.insert t k v;
          Hashtbl.replace m k v)
        ops;
      Bt.check_invariants t;
      Bt.length t = Hashtbl.length m
      && Hashtbl.fold (fun k v acc -> acc && Bt.find t k = Some v) m true)

let test_btree_delete_rebalancing () =
  (* Drain a populated tree in random order: occupancy invariants must hold
     after every deletion, and the root must collapse back to a leaf. *)
  let t = Bt.create ~order:4 () in
  let keys = Array.init 300 (fun i -> i * 3) in
  Array.iter (fun k -> Bt.insert t k k) keys;
  Alcotest.(check bool) "grew several levels" true (Bt.height t >= 3);
  let rng = Rng.create 17 in
  Rng.shuffle rng keys;
  Array.iteri
    (fun i k ->
      Alcotest.(check bool) "deleted" true (Bt.delete t k);
      if i mod 10 = 0 then Bt.check_invariants t)
    keys;
  Bt.check_invariants t;
  Alcotest.(check int) "empty" 0 (Bt.length t);
  Alcotest.(check int) "root collapsed" 1 (Bt.height t)

let prop_btree_mixed_model =
  Util.qtest ~count:40 "btree matches a map under mixed insert/delete"
    QCheck.(small_list (pair bool (int_bound 200)))
    (fun ops ->
      let t = Bt.create ~order:4 () in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (is_insert, k) ->
          if is_insert then begin
            Bt.insert t k k;
            Hashtbl.replace m k k
          end
          else begin
            let deleted = Bt.delete t k in
            let expected = Hashtbl.mem m k in
            Hashtbl.remove m k;
            if deleted <> expected then failwith "delete result mismatch"
          end)
        ops;
      Bt.check_invariants t;
      Bt.length t = Hashtbl.length m
      && Hashtbl.fold (fun k v acc -> acc && Bt.find t k = Some v) m true)

let test_pack_key_order () =
  let k1 = Bt.pack_key ~global:1 ~local:500 in
  let k2 = Bt.pack_key ~global:2 ~local:3 in
  Alcotest.(check bool) "global dominates" true (k1 < k2);
  Alcotest.(check bool) "local orders within global" true
    (Bt.pack_key ~global:2 ~local:3 < Bt.pack_key ~global:2 ~local:4)

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_lru () =
  let stats = Io.create () in
  let pool = Bp.create ~capacity:2 ~stats in
  Bp.touch pool 1;
  Bp.touch pool 2;
  Alcotest.(check int) "two cold reads" 2 (Io.page_reads stats);
  Bp.touch pool 1;
  Alcotest.(check int) "hit" 1 (Io.hits stats);
  Bp.touch pool 3;
  (* page 2 is now the LRU victim *)
  Alcotest.(check bool) "2 evicted" false (Bp.resident pool 2);
  Alcotest.(check bool) "1 kept" true (Bp.resident pool 1);
  Bp.touch pool 2;
  Alcotest.(check int) "re-read after eviction" 4 (Io.page_reads stats)

let test_pool_writes () =
  let stats = Io.create () in
  let pool = Bp.create ~capacity:4 ~stats in
  Bp.touch_write pool 9;
  Alcotest.(check int) "write counted" 1 (Io.page_writes stats);
  Alcotest.(check int) "read counted too" 1 (Io.page_reads stats)

(* ------------------------------------------------------------------ *)
(* Node store                                                          *)
(* ------------------------------------------------------------------ *)

let store_of_tree ?(cache_pages = 4) n seed =
  let root =
    Shape.generate ~seed ~target:n (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:16 root in
  (root, r2, Ns.create ~records_per_page:8 ~cache_pages r2)

let test_store_fetch () =
  let root, r2, store = store_of_tree 200 5 in
  Alcotest.(check int) "record count" (Dom.size root) (Ns.record_count store);
  List.iter
    (fun n ->
      match Ns.fetch store (R2.id_of_node r2 n) with
      | Some r -> Alcotest.(check string) "tag matches" (Dom.tag n) r.Ns.tag
      | None -> Alcotest.fail "record missing")
    (Dom.preorder root);
  Alcotest.(check bool) "reads happened" true (Io.page_reads (Ns.stats store) > 0)

let test_store_parent_pointers () =
  let root, r2, store = store_of_tree 150 9 in
  List.iter
    (fun n ->
      let r = Option.get (Ns.fetch store (R2.id_of_node r2 n)) in
      match (n.Dom.parent, r.Ns.parent_id) with
      | None, None -> ()
      | Some p, Some pid ->
        Alcotest.(check bool) "parent pointer correct" true
          (R2.id_equal pid (R2.id_of_node r2 p))
      | _ -> Alcotest.fail "parent pointer mismatch")
    (Dom.preorder root)

let test_ancestor_strategies_agree () =
  let root, r2, store = store_of_tree 300 13 in
  let rng = Rng.create 4 in
  for _ = 1 to 30 do
    let n = Shape.random_node rng root in
    let id = R2.id_of_node r2 n in
    Alcotest.(check (list string)) "ancestor lists agree"
      (List.map R2.id_to_string (Ns.ancestor_ids_arithmetic store id))
      (List.map R2.id_to_string (Ns.ancestor_ids_pointer_chase store id))
  done

let test_arithmetic_needs_no_io () =
  let root, r2, store = store_of_tree 400 21 in
  let rng = Rng.create 6 in
  Ns.reset_stats store;
  Ns.clear_cache store;
  for _ = 1 to 50 do
    let a = Shape.random_node rng root in
    let b = Shape.random_node rng root in
    ignore (Ns.is_ancestor_arithmetic store
              ~anc:(R2.id_of_node r2 a) ~desc:(R2.id_of_node r2 b));
    ignore (Ns.ancestor_ids_arithmetic store (R2.id_of_node r2 a))
  done;
  Alcotest.(check int) "zero page reads" 0 (Io.page_reads (Ns.stats store));
  (* The pointer chase, by contrast, reads pages. *)
  let deep =
    List.fold_left
      (fun best n -> if Dom.depth_of n > Dom.depth_of best then n else best)
      root (Dom.preorder root)
  in
  ignore (Ns.ancestor_ids_pointer_chase store (R2.id_of_node r2 deep));
  Alcotest.(check bool) "pointer chase reads" true
    (Io.page_reads (Ns.stats store) > 0)

let test_ancestor_check_strategies_agree () =
  let root, r2, store = store_of_tree 250 17 in
  let rng = Rng.create 11 in
  for _ = 1 to 60 do
    let a = Shape.random_node rng root in
    let b = Shape.random_node rng root in
    let anc = R2.id_of_node r2 a and desc = R2.id_of_node r2 b in
    Alcotest.(check bool) "is_ancestor agrees"
      (Ns.is_ancestor_arithmetic store ~anc ~desc)
      (Ns.is_ancestor_pointer_chase store ~anc ~desc)
  done

let test_fetch_subtree () =
  let root, r2, store = store_of_tree 120 23 in
  let rng = Rng.create 2 in
  for _ = 1 to 10 do
    let n = Shape.random_node rng root in
    let records = Ns.fetch_subtree store (R2.id_of_node r2 n) in
    Alcotest.(check int) "subtree size" (Dom.size n) (List.length records);
    Alcotest.(check (list int)) "document order"
      (List.map (fun x -> x.Dom.serial) (Dom.preorder n))
      (List.map (fun r -> r.Ns.serial) records)
  done

let suite =
  [
    Alcotest.test_case "btree basics" `Quick test_btree_basics;
    Alcotest.test_case "btree range scan" `Quick test_btree_range;
    Alcotest.test_case "btree delete" `Quick test_btree_delete;
    Alcotest.test_case "btree iter sorted" `Quick test_btree_iter_sorted;
    prop_btree_model;
    Alcotest.test_case "btree delete rebalancing" `Quick test_btree_delete_rebalancing;
    prop_btree_mixed_model;
    Alcotest.test_case "composite key order" `Quick test_pack_key_order;
    Alcotest.test_case "LRU behaviour" `Quick test_pool_lru;
    Alcotest.test_case "write counting" `Quick test_pool_writes;
    Alcotest.test_case "store fetch" `Quick test_store_fetch;
    Alcotest.test_case "stored parent pointers" `Quick test_store_parent_pointers;
    Alcotest.test_case "ancestor strategies agree" `Quick test_ancestor_strategies_agree;
    Alcotest.test_case "arithmetic needs no I/O" `Quick test_arithmetic_needs_no_io;
    Alcotest.test_case "ancestor checks agree" `Quick test_ancestor_check_strategies_agree;
    Alcotest.test_case "fetch_subtree" `Quick test_fetch_subtree;
  ]
