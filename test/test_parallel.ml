(* Multicore read path: the domain executor, the snapshot-versioned result
   cache, exception accounting, the scaled default queue bound, and the
   determinism / version-correctness guarantees of parallel reads. *)

module Dom = Rxml.Dom
module P = Rserver.Protocol
module C = Rserver.Client
module Service = Rserver.Service
module Executor = Rserver.Executor
module Cache = Rserver.Query_cache
module Wal = Rstorage.Wal

let unique =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-p%d" (Unix.getpid ()) !n

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ()) ("ruid-par-" ^ unique ())
  in
  Unix.mkdir d 0o755;
  d

let sock_path () = Filename.concat "/tmp" ("ruid-" ^ unique () ^ ".sock")

let with_server ?(workers = 2) ?(max_queue = 0) ?(domains = 0) ?(cache_mb = 0)
    docs f =
  let cfg =
    {
      Service.socket_path = sock_path ();
      data_dir = temp_dir ();
      workers;
      max_queue;
      deadline_ms = 0;
      max_area_size = 16;
      max_depth = 10_000;
      domains;
      cache_mb;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups = 1;
      wal_segment_bytes = 0;
      planner = true;
      plan_cache = 256;
      epoch = 1;
    }
  in
  let t = Service.start cfg docs in
  Fun.protect ~finally:(fun () -> Service.stop t) (fun () -> f cfg t)

let ok_body = function
  | P.Ok_ body -> body
  | P.Err m -> Alcotest.failf "unexpected ERR %s" m
  | P.Busy m -> Alcotest.failf "unexpected BUSY %s" m

let get_kv body key =
  match C.kv_int body key with
  | Some v -> v
  | None -> Alcotest.failf "reply %S lacks %s=" body key

let doc_of_string s = Dom.root_element (Rxml.Parser.parse_string s)
let library = "<lib><book><title/><author/></book><book><title/></book></lib>"

(* ------------------------------------------------------------------ *)
(* Query cache                                                         *)
(* ------------------------------------------------------------------ *)

(* normalize now canonicalizes through the parser: abbreviations expand to
   explicit axes, so every spelling of one query shares a cache entry. *)
let test_cache_normalize () =
  Alcotest.(check string) "trims + expands"
    "/descendant-or-self::node()/child::a"
    (Cache.normalize "  //a  ");
  Alcotest.(check string) "whitespace variants agree"
    (Cache.normalize "//a[b='c']/d")
    (Cache.normalize "//a[\t b  =\n'c' ]/d");
  Alcotest.(check string) "abbreviated = explicit"
    (Cache.normalize "/descendant-or-self::node()/child::a[child::b]")
    (Cache.normalize "//a[b]");
  Alcotest.(check string) "idempotent"
    (Cache.normalize "//a/b")
    (Cache.normalize (Cache.normalize "//a/b"));
  (* unparsable input degrades to whitespace collapse, still idempotent *)
  Alcotest.(check string) "fallback collapses" "not ( an xpath"
    (Cache.normalize "  not (  an\txpath ");
  Alcotest.(check string) "agrees with planner normal form"
    (Rxpath.Xparser.normalize "//a[b]/c")
    (Cache.normalize "//a[b]/c")

let test_cache_basics () =
  let c = Cache.create ~shards:2 ~max_entries:100 ~max_bytes:100_000 () in
  Alcotest.(check (option string)) "empty miss" None
    (Cache.find c ~doc:"d" ~version:1 ~query:"//a");
  Cache.add c ~doc:"d" ~version:1 ~query:"//a" "7";
  Alcotest.(check (option string)) "hit" (Some "7")
    (Cache.find c ~doc:"d" ~version:1 ~query:"//a");
  (* version is part of the key: a new snapshot never sees old entries *)
  Alcotest.(check (option string)) "other version misses" None
    (Cache.find c ~doc:"d" ~version:2 ~query:"//a");
  Alcotest.(check (option string)) "other doc misses" None
    (Cache.find c ~doc:"e" ~version:1 ~query:"//a");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "entries" 1 s.Cache.entries;
  Alcotest.(check bool) "bytes accounted" true (s.Cache.bytes > 0);
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.stats c).Cache.entries

let test_cache_lru_eviction () =
  (* One shard so recency order is global and deterministic. *)
  let c = Cache.create ~shards:1 ~max_entries:3 ~max_bytes:1_000_000 () in
  Cache.add c ~doc:"d" ~version:1 ~query:"q1" "a";
  Cache.add c ~doc:"d" ~version:1 ~query:"q2" "b";
  Cache.add c ~doc:"d" ~version:1 ~query:"q3" "c";
  (* touch q1 so q2 is the LRU victim *)
  ignore (Cache.find c ~doc:"d" ~version:1 ~query:"q1");
  Cache.add c ~doc:"d" ~version:1 ~query:"q4" "d";
  Alcotest.(check (option string)) "q1 kept (recently used)" (Some "a")
    (Cache.find c ~doc:"d" ~version:1 ~query:"q1");
  Alcotest.(check (option string)) "q2 evicted" None
    (Cache.find c ~doc:"d" ~version:1 ~query:"q2");
  Alcotest.(check (option string)) "q4 present" (Some "d")
    (Cache.find c ~doc:"d" ~version:1 ~query:"q4");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions

let test_cache_byte_cap () =
  let c = Cache.create ~shards:1 ~max_entries:1000 ~max_bytes:400 () in
  let big = String.make 100 'x' in
  for i = 1 to 10 do
    Cache.add c ~doc:"d" ~version:i ~query:"q" big
  done;
  let s = Cache.stats c in
  Alcotest.(check bool) "bytes within cap" true (s.Cache.bytes <= 400);
  Alcotest.(check bool) "evicted to fit" true (s.Cache.evictions > 0);
  (* an entry bigger than the whole shard is refused, not thrashed *)
  Cache.add c ~doc:"d" ~version:99 ~query:"huge" (String.make 4096 'y');
  Alcotest.(check (option string)) "oversized entry dropped" None
    (Cache.find c ~doc:"d" ~version:99 ~query:"huge")

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let test_executor_runs_jobs () =
  let ex = Executor.create ~domains:2 ~max_queue:16 () in
  let counter = Atomic.make 0 in
  let n = 50 in
  let submitted = ref 0 in
  for _ = 1 to n do
    if Executor.submit ex (fun () -> Atomic.incr counter) then incr submitted
  done;
  Executor.shutdown ex;
  Alcotest.(check int) "all admitted jobs ran" !submitted (Atomic.get counter);
  Alcotest.(check bool) "most jobs admitted" true (!submitted > 0);
  Alcotest.(check int) "two domains" 2 (Executor.domains ex);
  Alcotest.(check int) "drained" 0 (Executor.queue_depth ex);
  Alcotest.(check bool) "rejects after shutdown" false
    (Executor.submit ex (fun () -> ()))

let test_executor_bounds_and_exceptions () =
  let dropped = ref [] and dmu = Mutex.create () in
  let on_exn ~label e =
    Mutex.lock dmu;
    dropped := (label, Printexc.to_string e) :: !dropped;
    Mutex.unlock dmu
  in
  let ex = Executor.create ~on_exn ~domains:1 ~max_queue:2 () in
  let release = Mutex.create () and released = Condition.create () in
  let go = ref false in
  let blocker () =
    Mutex.lock release;
    while not !go do
      Condition.wait released release
    done;
    Mutex.unlock release
  in
  Alcotest.(check bool) "job admitted" true (Executor.submit ex blocker);
  Thread.delay 0.1;
  (* the domain holds the blocker; fill the queue *)
  Alcotest.(check bool) "slot 1" true
    (Executor.submit ~label:"BOOM" ex (fun () -> failwith "kaput"));
  Alcotest.(check bool) "slot 2" true (Executor.submit ex (fun () -> ()));
  Alcotest.(check bool) "queue full" false (Executor.submit ex (fun () -> ()));
  Alcotest.(check int) "depth" 2 (Executor.queue_depth ex);
  Mutex.lock release;
  go := true;
  Condition.broadcast released;
  Mutex.unlock release;
  Executor.shutdown ex;
  (match !dropped with
  | [ (label, msg) ] ->
    Alcotest.(check string) "label reaches on_exn" "BOOM" label;
    Alcotest.(check bool) "message kept" true
      (String.length msg > 0)
  | l -> Alcotest.failf "expected exactly one dropped exception, got %d"
           (List.length l));
  let busy = Executor.busy_seconds ex in
  Alcotest.(check int) "one busy slot" 1 (Array.length busy);
  Alcotest.(check bool) "busy time accumulated" true (busy.(0) > 0.)

let test_scheduler_reports_dropped () =
  let m = Rserver.Metrics.create () in
  let sched =
    Rserver.Scheduler.create
      ~on_exn:(fun ~label e -> Rserver.Metrics.record_dropped m ~verb:label e)
      ~workers:1 ~max_queue:8 ()
  in
  Alcotest.(check bool) "raising job admitted" true
    (Rserver.Scheduler.submit ~label:"QUERY" sched (fun () -> failwith "x"));
  Alcotest.(check bool) "second raising job" true
    (Rserver.Scheduler.submit ~label:"QUERY" sched (fun () ->
         raise Not_found));
  Rserver.Scheduler.shutdown sched;
  Alcotest.(check int) "both counted" 2 (Rserver.Metrics.dropped m);
  let stats = Rserver.Metrics.render m in
  Alcotest.(check bool) "rendered in STATS" true
    (C.kv_int stats "dropped_exceptions" = Some 2)

(* ------------------------------------------------------------------ *)
(* Default queue bound regression (satellite: E13's 67% busy at 8       *)
(* clients came from a bound that ignored the pool size)                *)
(* ------------------------------------------------------------------ *)

let run_mix ~clients ~per_client ~update_every cfg =
  (* closed-loop 90/10-style mix; returns (ok, busy, err) *)
  let ok = Atomic.make 0 and busy = Atomic.make 0 and err = Atomic.make 0 in
  let body () =
    C.with_connection cfg.Service.socket_path @@ fun c ->
    for i = 0 to per_client - 1 do
      let req =
        if update_every > 0 && i mod update_every = update_every - 1 then
          P.Update
            { doc = "lib";
              op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } }
        else P.Count "//m"
      in
      match C.request c req with
      | P.Ok_ _ -> Atomic.incr ok
      | P.Busy _ -> Atomic.incr busy
      | P.Err _ -> Atomic.incr err
    done
  in
  let threads = Array.init clients (fun _ -> Thread.create body ()) in
  Array.iter Thread.join threads;
  (Atomic.get ok, Atomic.get busy, Atomic.get err)

let test_default_queue_low_busy () =
  (* clients = workers on the default (auto) queue bound: the 90/10 mix
     must complete essentially without rejects. *)
  let workers = 4 in
  with_server ~workers ~max_queue:0 [ ("lib", doc_of_string library) ]
  @@ fun cfg _t ->
  let clients = workers and per_client = 50 in
  let ok, busy, err = run_mix ~clients ~per_client ~update_every:10 cfg in
  let total = clients * per_client in
  Alcotest.(check int) "no errors" 0 err;
  let busy_rate = float_of_int busy /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "busy rate %.1f%% < 10%%" (busy_rate *. 100.))
    true (busy_rate < 0.10);
  Alcotest.(check bool) "work done" true (ok > 0)

(* ------------------------------------------------------------------ *)
(* Determinism: 1 domain vs N domains                                  *)
(* ------------------------------------------------------------------ *)

let test_domain_determinism () =
  (* The same 20 seeded-random XMark queries must produce bit-identical
     replies (totals, per-document counts, identifier lists, order) from a
     1-domain and a 4-domain server hosting the same document. *)
  let root = Rworkload.Xmark.generate ~seed:77 ~scale:0.6 in
  let rng = Rworkload.Rng.create 4242 in
  let pool = Array.of_list Rworkload.Xmark.queries in
  let queries = List.init 20 (fun _ -> Rworkload.Rng.pick rng pool) in
  let collect domains =
    with_server ~workers:2 ~domains [ ("xmark", Dom.clone root) ]
    @@ fun cfg _t ->
    C.with_connection cfg.Service.socket_path @@ fun c ->
    List.concat_map
      (fun q ->
        [ ok_body (C.request c (P.Query q)); ok_body (C.request c (P.Count q)) ])
      queries
  in
  let single = collect 1 in
  let quad = collect 4 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "reply %d identical across domain counts" i) a b)
    (List.combine single quad)

(* ------------------------------------------------------------------ *)
(* Cache correctness under a concurrent writer                         *)
(* ------------------------------------------------------------------ *)

let test_cache_hammer_versioned () =
  (* Same invariant as the snapshot-isolation test — count(//m) = v - 1 —
     but with parallel domains AND the result cache on.  A cache returning
     an answer from any version other than the one it claims breaks the
     equation immediately. *)
  with_server ~workers:2 ~domains:2 ~cache_mb:8
    [ ("lib", doc_of_string library) ]
  @@ fun cfg t ->
  let updates = 30 and readers = 4 and reads = 80 in
  let violations = ref [] and vmu = Mutex.create () in
  let record msg =
    Mutex.lock vmu;
    violations := msg :: !violations;
    Mutex.unlock vmu
  in
  let writer =
    Thread.create
      (fun () ->
        C.with_connection cfg.Service.socket_path @@ fun c ->
        for i = 1 to updates do
          (match
             C.request c
               (P.Update
                  { doc = "lib";
                    op = Wal.Insert { parent_rank = 0; pos = 0; tag = "m" } })
           with
          | P.Ok_ _ -> ()
          | r -> record (Printf.sprintf "update %d: %s" i (P.response_to_string r)));
          Thread.yield ()
        done)
      ()
  in
  let reader _ =
    Thread.create
      (fun () ->
        C.with_connection cfg.Service.socket_path @@ fun c ->
        for _ = 1 to reads do
          match C.request c (P.Count "//m") with
          | P.Ok_ body ->
            let v = get_kv body "v" and n = get_kv body "total" in
            if n <> v - 1 then
              record
                (Printf.sprintf "version mismatch: v=%d claims %d <m>" v n)
          | P.Busy _ -> ()
          | P.Err m -> record ("reader error: " ^ m)
        done)
      ()
  in
  let rs = List.init readers reader in
  Thread.join writer;
  List.iter Thread.join rs;
  (match !violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%d violation(s), e.g. %s" (List.length !violations) v);
  (* the workload above repeats one query per snapshot across 4 readers:
     the cache must have answered part of it *)
  match Service.cache_stats t with
  | None -> Alcotest.fail "cache configured but no stats"
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "cache hits recorded (%d hits / %d misses)" s.Cache.hits
         s.Cache.misses)
      true (s.Cache.hits > 0)

let test_cached_replies_identical () =
  (* A cache hit must render byte-identically to the miss that filled it,
     for both COUNT and QUERY (ids, caps, per-doc breakdown). *)
  with_server ~workers:2 ~domains:2 ~cache_mb:4
    [ ("lib", doc_of_string library) ]
  @@ fun cfg t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  List.iter
    (fun q ->
      let miss = ok_body (C.request c (P.Query q)) in
      let hit = ok_body (C.request c (P.Query q)) in
      Alcotest.(check string) ("QUERY " ^ q) miss hit;
      let cmiss = ok_body (C.request c (P.Count q)) in
      let chit = ok_body (C.request c (P.Count q)) in
      Alcotest.(check string) ("COUNT " ^ q) cmiss chit;
      (* whitespace-normalized spelling shares the entry *)
      let spaced = ok_body (C.request c (P.Count ("  " ^ q ^ "  "))) in
      Alcotest.(check string) ("normalized COUNT " ^ q) cmiss spaced)
    [ "//title"; "//book/title"; "/lib/book"; "//nosuch" ];
  match Service.cache_stats t with
  | Some s -> Alcotest.(check bool) "hits observed" true (s.Cache.hits >= 8)
  | None -> Alcotest.fail "no cache stats"

let test_domains_stats_rendered () =
  with_server ~workers:2 ~domains:2 ~cache_mb:4
    [ ("lib", doc_of_string library) ]
  @@ fun cfg _t ->
  C.with_connection cfg.Service.socket_path @@ fun c ->
  ignore (ok_body (C.request c (P.Count "//title")));
  let stats = ok_body (C.request c P.Stats) in
  Alcotest.(check (option int)) "domains gauge" (Some 2)
    (C.kv_int stats "domains");
  Alcotest.(check bool) "cache gauges" true
    (C.kv_int stats "cache_hits" <> None
    && C.kv_int stats "cache_misses" <> None);
  Alcotest.(check (option int)) "no dropped exceptions" (Some 0)
    (C.kv_int stats "dropped_exceptions")

let suite =
  [
    Alcotest.test_case "cache: normalize" `Quick test_cache_normalize;
    Alcotest.test_case "cache: basics + version keying" `Quick test_cache_basics;
    Alcotest.test_case "cache: LRU eviction order" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: byte cap" `Quick test_cache_byte_cap;
    Alcotest.test_case "executor: runs jobs on domains" `Quick test_executor_runs_jobs;
    Alcotest.test_case "executor: bounds + exception hook" `Quick
      test_executor_bounds_and_exceptions;
    Alcotest.test_case "scheduler: dropped exceptions counted" `Quick
      test_scheduler_reports_dropped;
    Alcotest.test_case "default queue bound: low busy at clients=workers" `Quick
      test_default_queue_low_busy;
    Alcotest.test_case "determinism: 1 vs 4 domains bit-identical" `Quick
      test_domain_determinism;
    Alcotest.test_case "cache hammer: never a mismatched version" `Quick
      test_cache_hammer_versioned;
    Alcotest.test_case "cache hit renders identically to miss" `Quick
      test_cached_replies_identical;
    Alcotest.test_case "STATS renders domain + cache gauges" `Quick
      test_domains_stats_rendered;
  ]
