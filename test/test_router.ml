(* Sharded collection tier: merge-kernel byte equivalence, scatter-gather
   against live shards (router reply == pure merge of the per-shard
   replies), single-document forwarding with probe-on-miss, degraded
   service with a shard down, online rebalance, and runtime collection
   membership (ADDDOC / DROPDOC / ADOPT abort). *)

module Dom = Rxml.Dom
module P = Rserver.Protocol
module C = Rserver.Client
module Service = Rserver.Service
module Router = Rserver.Router
module Shard_map = Rserver.Shard_map
module Wal = Rstorage.Wal

let unique =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-r%d" (Unix.getpid ()) !n

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ()) ("ruid-rt-" ^ unique ())
  in
  Unix.mkdir d 0o755;
  d

let sock_path () = Filename.concat "/tmp" ("ruid-" ^ unique () ^ ".sock")

let doc_of_string s = Dom.root_element (Rxml.Parser.parse_string s)

let shard_cfg () =
  {
    Service.socket_path = sock_path ();
    data_dir = temp_dir ();
    workers = 2;
    max_queue = 16;
    deadline_ms = 0;
    max_area_size = 8;
    max_depth = 10_000;
    domains = 0;
    cache_mb = 0;
    commit_interval_us = 0;
    commit_max_batch = 64;
    commit_groups = 1;
    wal_segment_bytes = 0;
    planner = true;
    plan_cache = 64;
    epoch = 1;
  }

(* Three shards, one router.  [docs.(i)] is hosted by shard [i] from
   boot; the router's startup DOCS sweep catalogues every placement, so
   hash-disagreeing names still route. *)
let with_tier ?(docs = [| []; []; [] |]) f =
  let cfgs = Array.map (fun _ -> shard_cfg ()) docs in
  let shards = Array.map2 (fun cfg d -> Service.start cfg d) cfgs docs in
  let rcfg =
    Router.default_config ~socket_path:(sock_path ())
      ~shard_sockets:(Array.map (fun c -> c.Service.socket_path) cfgs)
      ()
  in
  let rcfg = { rcfg with Router.shard_deadline_ms = 5_000 } in
  let router = Router.start rcfg in
  let stopped = Array.map (fun _ -> ref false) shards in
  let stop_shard i =
    if not !(stopped.(i)) then begin
      stopped.(i) := true;
      Service.stop shards.(i)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Array.iteri (fun i _ -> stop_shard i) shards)
    (fun () -> f ~cfgs ~rcfg ~stop_shard)

let ok_body = function
  | P.Ok_ body -> body
  | P.Err m -> Alcotest.failf "unexpected ERR %s" m
  | P.Busy m -> Alcotest.failf "unexpected BUSY %s" m

let err_body = function
  | P.Err m -> m
  | r -> Alcotest.failf "expected ERR, got %s" (P.response_to_string r)

let ask sock req = C.with_connection sock (fun c -> C.request c req)

let get_kv body key =
  match C.kv_int body key with
  | Some v -> v
  | None -> Alcotest.failf "reply %S lacks %s=" body key

let is_partial body = C.kv body "partial" <> None

(* The shard documents: distinct tags per shard so per-shard totals are
   recognizable in merged replies. *)
let shard_docs () =
  [|
    [ ("alpha", doc_of_string "<a><x/><x/><y/></a>") ];
    [ ("beta", doc_of_string "<a><x/><y/><y/><y/></a>");
      ("gamma", doc_of_string "<a><z/></a>") ];
    [ ("delta", doc_of_string "<a><x/><z/><z/></a>") ];
  |]

(* ------------------------------------------------------------------ *)
(* Pure merge kernels                                                  *)
(* ------------------------------------------------------------------ *)

let test_merge_count () =
  Alcotest.(check string)
    "sums and concatenates in shard order" "v=7 total=5 a=2 b=3"
    (Router.merge_count ~shards:2
       ~replies:[ (0, "v=3 total=2 a=2"); (1, "v=4 total=3 b=3") ]
       ~missing:[]);
  Alcotest.(check string)
    "missing shard flags partial" "v=3 total=2 a=2 partial=2/3"
    (Router.merge_count ~shards:3 ~replies:[ (0, "v=3 total=2 a=2") ]
       ~missing:[ 1; 2 ]);
  Alcotest.(check string)
    "shard-side elision survives" "v=5 total=9 a=4 b=5 ..."
    (Router.merge_count ~shards:2
       ~replies:[ (0, "v=2 total=4 a=4 ..."); (1, "v=3 total=5 b=5") ]
       ~missing:[])

let test_merge_query () =
  Alcotest.(check string)
    "ids concatenate in shard order"
    "v=5 total=3 a=1 b=2 ids a:(1,1,false) b:(2,1,false) b:(2,2,false)"
    (Router.merge_query ~shards:2
       ~replies:
         [ (0, "v=2 total=1 a=1 ids a:(1,1,false)");
           (1, "v=3 total=2 b=2 ids b:(2,1,false) b:(2,2,false)") ]
       ~missing:[]);
  (* a merged total beyond the id cap marks the listing elided, exactly
     as a single shard would *)
  let many =
    String.concat " " (List.init 30 (fun i -> Printf.sprintf "a:(1,%d,false)" i))
  in
  let merged =
    Router.merge_query ~shards:2
      ~replies:
        [ (0, Printf.sprintf "v=1 total=30 a=30 ids %s" many);
          (1, "v=1 total=30 b=30 ids " ^ many) ]
      ~missing:[]
  in
  Alcotest.(check int) "total summed" 60 (get_kv merged "total");
  Alcotest.(check bool) "id listing elided" true
    (String.length merged >= 3
    && String.sub merged (String.length merged - 3) 3 = "...");
  (* exactly id_cap identifiers listed *)
  let ids_part =
    String.split_on_char ' ' merged
    |> List.filter (fun t -> String.contains t ':')
  in
  Alcotest.(check int) "capped at 32 ids" 32 (List.length ids_part)

let test_merge_explain () =
  Alcotest.(check string)
    "sections in shard order, missing marked"
    "v=5 partial=1/3\nshard 0\nplan A\nshard 1 unavailable\nshard 2\nplan C"
    (Router.merge_explain ~shards:3
       ~replies:[ (0, "v=2\nplan A"); (2, "v=3\nplan C") ]
       ~missing:[ 1 ])

let test_merge_docs () =
  Alcotest.(check string)
    "per-shard counts, never names" "v=6 docs=5 shard0=2 shard1=3"
    (Router.merge_docs ~shards:2
       ~replies:
         [ (0, "v=2 docs=2 alpha beta"); (1, "v=4 docs=3 gamma delta eps") ]
       ~missing:[])

(* ------------------------------------------------------------------ *)
(* Scatter-gather over live shards                                     *)
(* ------------------------------------------------------------------ *)

(* The router's collection-wide answer must be byte-identical to the
   pure merge of the shards' own answers — the merge kernels are the
   specification, the scatter is just transport. *)
let test_scatter_equivalence () =
  with_tier ~docs:(shard_docs ()) @@ fun ~cfgs ~rcfg ~stop_shard:_ ->
  let shard_reply req =
    Array.to_list cfgs
    |> List.mapi (fun i cfg ->
           (i, ok_body (ask cfg.Service.socket_path req)))
  in
  List.iter
    (fun (req, merge, label) ->
      let expect =
        merge ~shards:3 ~replies:(shard_reply req) ~missing:[]
      in
      let got = ok_body (ask rcfg.Router.socket_path req) in
      Alcotest.(check string) label expect got)
    [
      (P.Count "//x", Router.merge_count, "COUNT merges");
      (P.Count "//nothing", Router.merge_count, "empty COUNT merges");
      (P.Query "//y", Router.merge_query, "QUERY merges");
      (P.Query "//z", Router.merge_query, "QUERY merges (other shards)");
      (P.Docs, Router.merge_docs, "DOCS merges");
    ];
  (* EXPLAIN executes uncached and reports measured timings, so byte
     equality against a second execution cannot hold; check the merged
     shape instead: summed version line and one section per shard. *)
  let body = ok_body (ask rcfg.Router.socket_path (P.Explain "//x")) in
  let direct = shard_reply (P.Explain "//x") in
  let v_sum =
    List.fold_left (fun acc (_, b) -> acc + get_kv b "v") 0 direct
  in
  Alcotest.(check int) "EXPLAIN v is the version sum" v_sum (get_kv body "v");
  List.iter
    (fun i ->
      let heading = Printf.sprintf "shard %d\n" i in
      let found =
        let hl = String.length heading and bl = String.length body in
        let rec at j = j + hl <= bl && (String.sub body j hl = heading || at (j + 1)) in
        at 0
      in
      Alcotest.(check bool) (Printf.sprintf "shard %d section" i) true found)
    [ 0; 1; 2 ];
  (* the total count across the tier is the sum of the shards *)
  let count = ok_body (ask rcfg.Router.socket_path (P.Count "//*")) in
  let per_shard =
    List.fold_left
      (fun acc (_, b) -> acc + get_kv b "total")
      0
      (shard_reply (P.Count "//*"))
  in
  Alcotest.(check int) "scatter count == sum of shard counts" per_shard
    (get_kv count "total")

let test_scatter_with_writer () =
  with_tier ~docs:(shard_docs ()) @@ fun ~cfgs:_ ~rcfg ~stop_shard:_ ->
  let stop = Atomic.make false in
  let writer =
    Thread.create
      (fun () ->
        C.with_connection rcfg.Router.socket_path @@ fun c ->
        while not (Atomic.get stop) do
          ignore
            (C.request c
               (P.Update
                  { doc = "beta";
                    op = Wal.Insert { parent_rank = 0; pos = 0; tag = "y" } }))
        done)
      ()
  in
  C.with_connection rcfg.Router.socket_path (fun c ->
      let last_v = ref 0 in
      for _ = 1 to 40 do
        let body = ok_body (C.request c (P.Count "//y")) in
        let v = get_kv body "v" in
        let total = get_kv body "total" in
        let listed =
          String.split_on_char ' ' body
          |> List.filter_map (fun tok ->
                 match String.index_opt tok '=' with
                 | Some i
                   when String.sub tok 0 i <> "v"
                        && String.sub tok 0 i <> "total"
                        && String.sub tok 0 i <> "partial" ->
                   int_of_string_opt
                     (String.sub tok (i + 1) (String.length tok - i - 1))
                 | _ -> None)
          |> List.fold_left ( + ) 0
        in
        Alcotest.(check bool) "no partial under a live writer" false
          (is_partial body);
        Alcotest.(check int) "total is the sum of the per-doc tokens" total
          listed;
        Alcotest.(check bool) "merged version never regresses" true
          (v >= !last_v);
        last_v := v
      done);
  Atomic.set stop true;
  Thread.join writer

let test_shard_down_degrades () =
  with_tier ~docs:(shard_docs ()) @@ fun ~cfgs ~rcfg ~stop_shard ->
  (* take shard 1 (beta, gamma) down; scatters must flag partial and
     still carry the live shards' answers *)
  stop_shard 1;
  let body = ok_body (ask rcfg.Router.socket_path (P.Count "//*")) in
  Alcotest.(check bool) "partial flagged" true (is_partial body);
  Alcotest.(check bool) "partial=1/3" true (C.kv body "partial" = Some "1/3");
  let alpha = ok_body (ask cfgs.(0).Service.socket_path (P.Count "//*")) in
  let delta = ok_body (ask cfgs.(2).Service.socket_path (P.Count "//*")) in
  Alcotest.(check int) "live shards fully represented"
    (get_kv alpha "total" + get_kv delta "total")
    (get_kv body "total");
  (* single-document verbs: live shard unaffected, dead shard's answer
     is an error, never a hang *)
  let ok = ok_body (ask rcfg.Router.socket_path
                      (P.Count_doc { doc = "alpha"; xpath = "//x" })) in
  Alcotest.(check int) "live doc serves" 2 (get_kv ok "total");
  (match
     ask rcfg.Router.socket_path (P.Count_doc { doc = "beta"; xpath = "//x" })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "dead shard's doc: %s" (P.response_to_string r));
  (match
     ask rcfg.Router.socket_path
       (P.Update
          { doc = "beta";
            op = Wal.Insert { parent_rank = 0; pos = 0; tag = "y" } })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "update to dead shard: %s" (P.response_to_string r));
  (* EXPLAIN marks the hole by name *)
  let ex = ok_body (ask rcfg.Router.socket_path (P.Explain "//x")) in
  let has_unavailable =
    let needle = "shard 1 unavailable" in
    let nl = String.length needle and bl = String.length ex in
    let rec at i = i + nl <= bl && (String.sub ex i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "explain marks the dead shard" true has_unavailable

(* ------------------------------------------------------------------ *)
(* Forwarding, membership, rebalance                                   *)
(* ------------------------------------------------------------------ *)

let test_forward_and_probe () =
  with_tier ~docs:(shard_docs ()) @@ fun ~cfgs ~rcfg ~stop_shard:_ ->
  (* forwarded reads are byte-identical to asking the shard directly *)
  List.iter
    (fun (doc, shard) ->
      let req = P.Query_doc { doc; xpath = "//*" } in
      Alcotest.(check string)
        (doc ^ " forwards")
        (ok_body (ask cfgs.(shard).Service.socket_path req))
        (ok_body (ask rcfg.Router.socket_path req)))
    [ ("alpha", 0); ("beta", 1); ("gamma", 1); ("delta", 2) ];
  (* probe-on-miss: plant a document directly on a non-hash shard behind
     the router's back; the first routed request finds and catalogues it *)
  let planted = "planted" in
  let away = (Shard_map.hash ~shards:3 planted + 1) mod 3 in
  ignore
    (ok_body
       (ask cfgs.(away).Service.socket_path
          (P.Add_doc { doc = planted; xml = "<p><q/></p>" })));
  let body =
    ok_body
      (ask rcfg.Router.socket_path
         (P.Count_doc { doc = planted; xpath = "//q" }))
  in
  Alcotest.(check int) "probe found the planted doc" 1 (get_kv body "total");
  (* unknown documents still fail after probing everywhere *)
  (match
     ask rcfg.Router.socket_path (P.Count_doc { doc = "ghost"; xpath = "//q" })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "ghost doc: %s" (P.response_to_string r))

let test_membership_via_router () =
  with_tier @@ fun ~cfgs ~rcfg ~stop_shard:_ ->
  (* the tier boots empty; ADDDOC through the router lands each document
     on its hash shard *)
  let names = List.init 12 (fun i -> Printf.sprintf "m%d" i) in
  List.iter
    (fun name ->
      let body =
        ok_body
          (ask rcfg.Router.socket_path
             (P.Add_doc { doc = name; xml = "<m><n/><n/></m>" }))
      in
      (* 3 elements + the numbering's virtual root *)
      Alcotest.(check int) "nodes counted" 4 (get_kv body "nodes"))
    names;
  let docs = ok_body (ask rcfg.Router.socket_path P.Docs) in
  Alcotest.(check int) "all documents hosted" 12 (get_kv docs "docs");
  (* every document sits on its hash shard — the ingest contract *)
  List.iter
    (fun name ->
      let s = Shard_map.hash ~shards:3 name in
      let direct =
        ask cfgs.(s).Service.socket_path
          (P.Count_doc { doc = name; xpath = "//n" })
      in
      Alcotest.(check int) (name ^ " on its hash shard") 2
        (get_kv (ok_body direct) "total"))
    names;
  (* duplicates are rejected by the owning shard *)
  (match
     ask rcfg.Router.socket_path (P.Add_doc { doc = "m3"; xml = "<m/>" })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "duplicate: %s" (P.response_to_string r));
  (* DROPDOC retires the document everywhere *)
  ignore (ok_body (ask rcfg.Router.socket_path (P.Drop_doc "m3")));
  let docs = ok_body (ask rcfg.Router.socket_path P.Docs) in
  Alcotest.(check int) "one fewer document" 11 (get_kv docs "docs");
  (* and the name can be reused (retired slots revive) *)
  ignore
    (ok_body
       (ask rcfg.Router.socket_path
          (P.Add_doc { doc = "m3"; xml = "<m><n/></m>" })));
  let body =
    ok_body
      (ask rcfg.Router.socket_path (P.Count_doc { doc = "m3"; xpath = "//n" }))
  in
  Alcotest.(check int) "revived with fresh content" 1 (get_kv body "total");
  (* chunked ingest through the router: [place] is deterministic, so
     every ADDCHUNK frame of the sequence lands on the same shard's
     spool — even across separate router sessions *)
  let big = "mbig" in
  let xml =
    "<m>" ^ String.concat "" (List.init 40 (fun _ -> "<n/>")) ^ "</m>"
  in
  let len = String.length xml in
  let rec ship off =
    let n = min 9 (len - off) in
    let last = off + n >= len in
    let body =
      ok_body
        (ask rcfg.Router.socket_path
           (P.Add_chunk { doc = big; off; last; bytes = String.sub xml off n }))
    in
    if last then body else ship (off + n)
  in
  Alcotest.(check int) "chunked document fully built" 42
    (get_kv (ship 0) "nodes");
  (* the router catalogued it on commit: the single-doc fast path routes *)
  Alcotest.(check int) "chunked document serves through the router" 40
    (get_kv
       (ok_body
          (ask rcfg.Router.socket_path (P.Count_doc { doc = big; xpath = "//n" })))
       "total");
  (* and it sits on its hash shard, like any one-shot ADDDOC *)
  let s = Shard_map.hash ~shards:3 big in
  Alcotest.(check int) "chunked document on its hash shard" 40
    (get_kv
       (ok_body
          (ask cfgs.(s).Service.socket_path
             (P.Count_doc { doc = big; xpath = "//n" })))
       "total")

let strip_version body =
  String.split_on_char ' ' body
  |> List.filter (fun tok ->
         not (String.length tok > 2 && String.sub tok 0 2 = "v="))
  |> String.concat " "

let test_rebalance () =
  with_tier ~docs:(shard_docs ()) @@ fun ~cfgs ~rcfg ~stop_shard:_ ->
  C.with_connection rcfg.Router.socket_path @@ fun c ->
  (* write a little history first so the journal ships too *)
  for _ = 1 to 5 do
    ignore
      (ok_body
         (C.request c
            (P.Update
               { doc = "beta";
                 op = Wal.Insert { parent_rank = 0; pos = 0; tag = "y" } })))
  done;
  let before =
    strip_version
      (ok_body (C.request c (P.Query_doc { doc = "beta"; xpath = "//y" })))
  in
  let body = ok_body (C.request c (P.Rebalance { doc = "beta"; target = 0 })) in
  Alcotest.(check bool) "reports the move" true
    (C.kv body "from" = Some "1" && C.kv body "to" = Some "0");
  Alcotest.(check bool) "reports a measured pause" true
    (C.kv body "pause_ms" <> None);
  (* identical answers after the move, modulo the snapshot version *)
  let after =
    strip_version
      (ok_body (C.request c (P.Query_doc { doc = "beta"; xpath = "//y" })))
  in
  Alcotest.(check string) "query results identical after the move" before
    after;
  (* the source shard no longer owns it; the target answers directly *)
  (match
     ask cfgs.(1).Service.socket_path
       (P.Count_doc { doc = "beta"; xpath = "//y" })
   with
  | P.Err _ -> ()
  | r -> Alcotest.failf "source still owns beta: %s" (P.response_to_string r));
  Alcotest.(check string) "target serves it byte-identically"
    after
    (strip_version
       (ok_body
          (ask cfgs.(0).Service.socket_path
             (P.Query_doc { doc = "beta"; xpath = "//y" }))));
  (* the moved artifacts pass fsck on the target's disk *)
  let base = Filename.concat cfgs.(0).Service.data_dir "beta" in
  let status =
    Wal.fsck ~xml:(base ^ ".xml") ~sidecar:(base ^ ".ruid")
      ~wal:(base ^ ".wal") ()
  in
  Alcotest.(check bool) "fsck rates the target recoverable" true
    (Wal.exit_code status <= 1);
  (* updates keep flowing to the new home through the router *)
  ignore
    (ok_body
       (C.request c
          (P.Update
             { doc = "beta";
               op = Wal.Insert { parent_rank = 0; pos = 0; tag = "y" } })));
  (* moving to the current owner is a no-op, not an error *)
  let again = ok_body (C.request c (P.Rebalance { doc = "beta"; target = 0 })) in
  Alcotest.(check bool) "idempotent" true (C.kv again "pause_ms" <> None);
  (* a shard refuses the orchestration verb *)
  let msg = err_body (ask cfgs.(2).Service.socket_path
                        (P.Rebalance { doc = "x"; target = 0 })) in
  Alcotest.(check bool) "shard points at the router" true
    (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Shard map                                                           *)
(* ------------------------------------------------------------------ *)

let test_shard_map () =
  let m = Shard_map.create ~shards:3 in
  Alcotest.(check int) "shards" 3 (Shard_map.shards m);
  (* the hash is a pure function of the name *)
  List.iter
    (fun name ->
      Alcotest.(check int) "stable"
        (Shard_map.hash ~shards:3 name)
        (Shard_map.place m name))
    [ "a"; "doc42"; "x/y"; "longer-name.xml" ];
  (* overrides beat the hash; assigning the hash default is dropped *)
  let name = "doc42" in
  let home = Shard_map.hash ~shards:3 name in
  let away = (home + 1) mod 3 in
  Shard_map.assign m name away;
  Alcotest.(check int) "override wins" away (Shard_map.place m name);
  Alcotest.(check int) "one override" 1 (Shard_map.overrides m);
  Shard_map.move m name home;
  Alcotest.(check int) "moving home drops the override" 0
    (Shard_map.overrides m);
  Alcotest.(check int) "back home" home (Shard_map.place m name);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Shard_map: shard 9 out of range") (fun () ->
      Shard_map.assign m name 9);
  (* doc_counts partitions exactly *)
  let names = List.init 50 (fun i -> Printf.sprintf "n%d" i) in
  let counts = Shard_map.doc_counts m ~known:names in
  Alcotest.(check int) "counts partition the names" 50
    (Array.fold_left ( + ) 0 counts)

let suite =
  [
    Alcotest.test_case "merge count" `Quick test_merge_count;
    Alcotest.test_case "merge query" `Quick test_merge_query;
    Alcotest.test_case "merge explain" `Quick test_merge_explain;
    Alcotest.test_case "merge docs" `Quick test_merge_docs;
    Alcotest.test_case "shard map" `Quick test_shard_map;
    Alcotest.test_case "scatter == merged shard replies" `Quick
      test_scatter_equivalence;
    Alcotest.test_case "scatter under a live writer" `Quick
      test_scatter_with_writer;
    Alcotest.test_case "shard down degrades to partial" `Quick
      test_shard_down_degrades;
    Alcotest.test_case "forwarding and probe-on-miss" `Quick
      test_forward_and_probe;
    Alcotest.test_case "membership through the router" `Quick
      test_membership_via_router;
    Alcotest.test_case "online rebalance" `Quick test_rebalance;
  ]
